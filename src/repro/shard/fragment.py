"""The fragment-shipping contract of partition-parallel execution.

A *fragment* is one partition's share of a parallel plan region,
expressed as data that can cross a process boundary:

* ``text`` — the fragment's logical form as **canonical pretty-printed
  ADL text** (:mod:`repro.adl.pretty`), with placeholder extent names
  (``__lshard__`` / ``__rshard__`` / ``__shard__``) where partitioned
  inputs go.  Receivers re-parse it with :func:`repro.adl.parser.parse_adl`
  and re-plan locally — the same re-parseable-shape trick the PR-4 plan
  cache plays with OOSQL text.  No plan trees, closures or locks ever
  ship;
* ``shards`` — placeholder → :class:`ShardRef` bindings saying which
  shard of which extent each placeholder denotes;
* ``params`` — the execution's prepared-statement parameter bindings,
  forwarded verbatim (``$name`` placeholders survive into the fragment
  text exactly as they survive into cached plans).

:func:`execute_fragment` is the single execution path for fragments —
the coordinator's inline fallback and the pool workers run the *same
function*, which is what makes parallel/serial parity hold by
construction.

Shard resolution (:class:`ShardView`) has two speeds:

* the binding matches a registered partitioning (same attribute, same
  part count) → the stored shard is used directly — the co-partitioned
  fast path that "skips the exchange entirely";
* otherwise the full extent is scanned and hash-filtered to the
  requested bucket — a *shared-scan repartition*, each worker reading
  everything and keeping its share.  This is a materializing exchange:
  it charges the scanned tuples and counts a pipeline break.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.adl import ast as A
from repro.datamodel.errors import PartitionError
from repro.datamodel.values import Value
from repro.engine.stats import Stats
from repro.shard.partition import partition_of

#: Placeholder extent names used by planner-built fragments.  Any name
#: may be bound — these are just the conventional ones.
LEFT_PLACEHOLDER = "__lshard__"
RIGHT_PLACEHOLDER = "__rshard__"
SCAN_PLACEHOLDER = "__shard__"



@dataclass(frozen=True)
class ShardRef:
    """One placeholder's binding: shard ``index`` of ``parts``-way hash
    partitioning of ``extent`` on ``attr`` — or, with ``attr=None``, the
    whole extent (the broadcast binding)."""

    extent: str
    attr: Optional[str] = None
    parts: Optional[int] = None
    index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.attr is not None:
            if not self.parts or self.parts < 1:
                raise PartitionError(f"shard ref needs parts >= 1, got {self.parts}")
            if self.index is None or not 0 <= self.index < self.parts:
                raise PartitionError(
                    f"shard index {self.index} out of range for {self.parts} parts"
                )


@dataclass(frozen=True)
class FragmentSpec:
    """One shippable fragment: ADL text + shard bindings + parameters.

    Plain picklable data — this is exactly what crosses the process
    boundary to a pool worker.
    """

    text: str
    shards: Tuple[Tuple[str, ShardRef], ...]
    params: Tuple[Tuple[str, Value], ...] = ()
    #: visibility epoch the fragment must read (PR 7), or ``None`` for a
    #: live-head read.  Rides the contract next to ``params`` so pool
    #: workers provably resolve the coordinator's pinned state.
    epoch: Optional[int] = None
    #: rows per columnar chunk (PR 8): a truthy value runs the fragment
    #: batch-at-a-time and ships its result as :class:`ChunkedRows` (one
    #: chunk list per batch) instead of a flat frozenset; ``None`` keeps
    #: the tuple-mode contract
    batch_size: Optional[int] = None
    #: trace context (PR 10): the coordinator recorder's trace id, or
    #: ``None`` for untraced runs.  When set, :func:`execute_fragment`
    #: piggybacks a per-fragment span record on the stats snapshot (the
    #: ``"_span"`` key, skipped by :func:`merge_stats_snapshot`) so the
    #: gather can hand workers' spans back to the coordinator's recorder.
    trace: Optional[str] = None

    @staticmethod
    def make(
        text: str,
        shards: Mapping[str, ShardRef],
        params: Optional[Mapping[str, Value]] = None,
        epoch: Optional[int] = None,
        batch_size: Optional[int] = None,
        trace: Optional[str] = None,
    ) -> "FragmentSpec":
        return FragmentSpec(
            text=text,
            shards=tuple(sorted(shards.items())),
            params=tuple(sorted((params or {}).items())),
            epoch=epoch,
            batch_size=batch_size,
            trace=trace,
        )

    @property
    def shard_map(self) -> Dict[str, ShardRef]:
        return dict(self.shards)

    @property
    def param_map(self) -> Dict[str, Value]:
        return dict(self.params)


class ChunkedRows:
    """A fragment result shipped as row chunks (PR 8 batched exchange).

    Plain picklable data, like everything else on the fragment contract.
    The chunks partition a *deduplicated* row set (the fragment's
    ``execute`` result), so ``len``/iteration/set-conversion are all
    exactly equivalent to the tuple-mode ``frozenset`` — consumers that
    don't care about chunk boundaries (the executor's ``result_rows``
    accounting, inline gathers under tuple mode) never notice the
    difference, while batch-mode gathers re-emit the chunks as
    :class:`~repro.engine.plan.Batch` objects without re-slicing.
    """

    __slots__ = ("chunks",)

    def __init__(self, chunks) -> None:
        self.chunks = list(chunks)

    def __len__(self) -> int:
        return sum(len(chunk) for chunk in self.chunks)

    def __iter__(self):
        for chunk in self.chunks:
            yield from chunk

    def __repr__(self) -> str:
        return f"ChunkedRows({len(self.chunks)} chunks, {len(self)} rows)"


class ShardView:
    """A database view resolving placeholder extents to shard row sets.

    Satisfies the interpreter protocol (``extent`` / ``deref``); every
    other name passes through to the underlying store.  ``partitions``
    is a plain ``{extent: PartitionedExtent}`` snapshot — resolution
    never takes catalog locks, so forked workers cannot inherit a held
    lock and deadlock.
    """

    def __init__(
        self,
        db,
        partitions: Mapping[str, object],
        shards: Mapping[str, ShardRef],
        stats: Stats,
    ) -> None:
        self._db = db
        self._partitions = partitions
        self._shards = dict(shards)
        self._stats = stats
        self._resolved: Dict[str, frozenset] = {}

    def extent(self, name: str) -> frozenset:
        if name not in self._shards:
            return self._db.extent(name)
        cached = self._resolved.get(name)
        if cached is None:
            cached = self._resolved[name] = self._resolve(self._shards[name])
        return cached

    def deref(self, oid):
        return self._db.deref(oid)

    def _resolve(self, ref: ShardRef) -> frozenset:
        if ref.attr is None:
            return self._db.extent(ref.extent)  # broadcast: the whole extent
        pe = self._partitions.get(ref.extent)
        if pe is not None and pe.attr == ref.attr and pe.parts == ref.parts:
            # Epoch-pinned reads (PR 7) may see an older extent value than
            # the one the registered partitioning was built from; the stored
            # shards are only usable when their source is *identical* to
            # the pinned rows — otherwise fall through to the shared-scan
            # filter, which reads through the pinned view and stays correct.
            if getattr(self._db, "pinned_epoch", None) is None or (
                pe.source_rows is self._db.extent(ref.extent)
            ):
                return pe.shard(ref.index)  # co-partitioned: stored shard, no exchange
        # shared-scan repartition: scan everything, keep this bucket — a
        # materializing exchange, charged and counted as a pipeline break
        rows = self._db.extent(ref.extent)
        self._stats.pipeline_breaks += 1
        self._stats.tuples_visited += len(rows)
        return frozenset(
            row for row in rows if partition_of(row[ref.attr], ref.parts) == ref.index
        )


def execute_fragment(
    db,
    partitions,
    spec: FragmentSpec,
    *,
    index: int = 0,
    attempt: int = 0,
    deadline: Optional[float] = None,
    fault_plan=None,
):
    """Re-parse, re-plan and execute one fragment; return ``(rows, stats)``.

    ``stats`` is a plain :meth:`~repro.engine.stats.Stats.snapshot` dict
    (picklable).  The fragment is planned heuristically (no catalog):
    fragments are single join/scan shapes whose strategy the coordinator
    already chose, and keeping workers off the shared catalog avoids
    cross-process staleness races.

    Fault tolerance (PR 6): this is the single injection + cancellation
    site of the parallel tier.  ``index``/``attempt`` identify the
    fragment and the batch attempt for the fault plan (passed explicitly
    by the inline path, or the process-global plan a pool initializer
    installed — see :mod:`repro.faults.runtime`); faults fire *before*
    any row is produced, so a failed attempt never leaks partial
    statistics into the attempt that succeeds.  ``deadline`` (absolute
    ``time.monotonic()``) is threaded into the runtime so the scan/filter
    hot loops poll it, and checked once per emitted row batch here.
    """
    import os
    import time

    from repro.adl.parser import parse_adl
    from repro.engine.plan import ExecRuntime
    from repro.engine.planner import Planner
    from repro.faults import runtime as faults_runtime

    started = time.perf_counter() if spec.trace is not None else 0.0
    plan_ = fault_plan if fault_plan is not None else faults_runtime.current()
    if plan_ is not None:
        plan_.apply(
            index=index,
            attempt=attempt,
            deadline=deadline,
            in_worker=faults_runtime.in_worker(),
        )
    expr = parse_adl(spec.text)
    stats = Stats()
    if spec.epoch is not None and hasattr(db, "extent_at"):
        # pin the whole fragment read to the coordinator's epoch (PR 7);
        # a pool worker's forked store keeps every snapshot the parent
        # preserved before the fork, so the resolution always succeeds
        from repro.storage.store import EpochView

        db = EpochView(db, spec.epoch)
    view = ShardView(db, partitions, spec.shard_map, stats)
    plan = Planner().plan(expr)
    rt = ExecRuntime(
        view,
        stats,
        params=spec.param_map,
        deadline=deadline,
        batch_size=spec.batch_size if deadline is None else None,
    )
    if deadline is None:
        rows = plan.execute(rt)
        if spec.batch_size:
            # batched exchange: ship the (deduplicated) result as row
            # chunks so the gather re-emits whole batches instead of
            # paying per-row stream overhead on the way back
            seq = list(rows)
            size = spec.batch_size
            rows = ChunkedRows(seq[i : i + size] for i in range(0, len(seq), size))
    else:
        out = []
        for n, row in enumerate(plan.iterate(rt)):
            if not (n & 63):
                rt.check_deadline()
            out.append(row)
        rt.check_deadline()
        rows = frozenset(out)
    snapshot = stats.snapshot()
    if spec.trace is not None:
        # the span rides the snapshot under an underscore key, which
        # merge_stats_snapshot skips — the (rows, snapshot) contract and
        # every untraced consumer are untouched
        snapshot["_span"] = {
            "trace": spec.trace,
            "fragment": index,
            "attempt": attempt,
            "pid": os.getpid(),
            "in_worker": faults_runtime.in_worker(),
            "epoch": spec.epoch,
            "rows": len(rows),
            "wall_s": time.perf_counter() - started,
            "work": stats.total_work(),
            "batches": stats.batches_emitted,
        }
    return rows, snapshot


def merge_stats_snapshot(stats: Stats, snapshot: Mapping[str, int]) -> None:
    """Fold one fragment's counter snapshot into a live ``Stats``.

    Underscore-prefixed keys are sidecar payloads (the PR-10 ``"_span"``
    trace record), not counters — skipped here."""
    for name, value in snapshot.items():
        if name.startswith("_"):
            continue
        setattr(stats, name, getattr(stats, name) + value)


def fragment_stats_total(snapshot: Mapping[str, int]) -> int:
    """``Stats.total_work`` computed over a snapshot dict — the per-worker
    effort number the benchmark's critical-path speedup is built from.
    Rehydrates a real ``Stats`` so the definition of "work" lives in one
    place and cannot drift from the serial side's accounting."""
    stats = Stats()
    merge_stats_snapshot(stats, snapshot)
    return stats.total_work()


def rebind_extent(operand: A.Expr, placeholder: str) -> A.Expr:
    """Swap the base :class:`~repro.adl.ast.ExtentRef` of a fragment
    operand (a bare extent, or selections over one) for a placeholder
    name.  Raises :class:`PartitionError` when the operand has no unique
    base extent — such operands are not fragment-shippable.  Maps are
    rejected like any other shape: they can rename attributes, which
    would break shard routing by attribute name (see
    ``Planner._fragment_base``).
    """
    if isinstance(operand, A.ExtentRef):
        return A.ExtentRef(placeholder)
    if isinstance(operand, A.Select):
        return A.Select(
            operand.var, operand.pred, rebind_extent(operand.source, placeholder)
        )
    raise PartitionError(
        f"operand {type(operand).__name__} has no unique base extent to shard"
    )
