"""Deterministic hash partitioning of extents.

Physical data partitioning is the storage half of partition-parallel
execution: an extent hash-partitioned on an attribute into *N* shards
can be scanned, filtered and — when two extents are partitioned on
their join attributes with equal part counts (*co-partitioned*) —
joined partition-wise, each shard pair independently.

Everything here must be **stable across processes**: worker processes
re-derive shard membership locally, so the partitioning function cannot
depend on Python's salted ``hash()`` (``PYTHONHASHSEED`` varies between
interpreter launches).  :func:`stable_hash` is a small FNV-1a over a
canonical byte rendering of the atom kinds partitioning keys may hold.

The :class:`PartitionedExtent` snapshot is registered in the
:class:`~repro.storage.catalog.Catalog` (see :meth:`Catalog.partition`)
and carries per-partition statistics computed with the same ANALYZE
machinery whole extents use, so the cost model can see shard sizes and
skew.  Like statistics and indexes it records the extent value it was
computed from and is rebuilt lazily when the identity handshake detects
staleness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.datamodel.errors import PartitionError
from repro.datamodel.values import Oid, Value

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1


def _fnv(data: bytes, acc: int = _FNV_OFFSET) -> int:
    for byte in data:
        acc = ((acc ^ byte) * _FNV_PRIME) & _MASK
    return acc


def stable_hash(value: Value) -> int:
    """A process-stable 64-bit hash of an atomic partitioning key.

    Accepts the atom kinds a partitioning attribute may hold — ``None``,
    bool, int, float, str, :class:`~repro.datamodel.values.Oid`.  Sets
    and tuples are rejected: a partitioning key must be atomic (hash
    routing a composite would silently depend on representation).
    """
    if value is None:
        return _fnv(b"\x00")
    if isinstance(value, bool):
        # Python-equal keys must co-locate: True == 1 == 1.0 joins in a
        # dict-based serial hash join, so all three must share a shard
        return stable_hash(int(value))
    if isinstance(value, int):
        # decimal text keeps the encoding injective for unbounded ints
        # (a fixed-width to_bytes would overflow past 128 bits)
        return _fnv(b"\x02" + str(value).encode("ascii"))
    if isinstance(value, float):
        if value.is_integer():  # hash-equal ints and integral floats agree
            return stable_hash(int(value))
        return _fnv(b"\x03" + repr(value).encode("utf-8"))
    if isinstance(value, str):
        return _fnv(b"\x04" + value.encode("utf-8"))
    if isinstance(value, Oid):
        return _fnv(
            b"\x05" + value.class_name.encode("utf-8") + b"\x00"
            + str(value.number).encode("ascii")
        )
    raise PartitionError(
        f"partitioning keys must be atoms, got {type(value).__name__}: {value!r}"
    )


def partition_of(value: Value, parts: int) -> int:
    """The shard index of ``value`` under ``parts``-way hash partitioning."""
    return stable_hash(value) % parts


def partition_rows(rows, attr: str, parts: int) -> List[frozenset]:
    """Split ``rows`` into ``parts`` shards by ``partition_of(row[attr])``."""
    if parts < 1:
        raise PartitionError(f"partition count must be >= 1, got {parts}")
    buckets: List[set] = [set() for _ in range(parts)]
    for row in rows:
        buckets[partition_of(row[attr], parts)].add(row)
    return [frozenset(bucket) for bucket in buckets]


@dataclass(frozen=True)
class PartitionedExtent:
    """One extent's registered hash partitioning: shards + per-shard stats.

    ``source_rows`` is the extent value the shards were derived from —
    the same identity handshake statistics and indexes use, so the
    catalog can detect and lazily rebuild a stale partitioning.
    ``shard_stats`` holds one :class:`~repro.storage.catalog.ExtentStats`
    per shard (pages are attributed to the whole extent, not shards).
    """

    extent: str
    attr: str
    parts: int
    shards: Tuple[frozenset, ...]
    shard_stats: Tuple
    source_rows: frozenset

    def shard(self, index: int) -> frozenset:
        if not 0 <= index < self.parts:
            raise PartitionError(
                f"{self.extent} has {self.parts} partitions, no shard {index}"
            )
        return self.shards[index]

    @property
    def cardinalities(self) -> Tuple[int, ...]:
        return tuple(len(s) for s in self.shards)

    @property
    def skew(self) -> float:
        """Largest shard over the even-split size (1.0 = perfectly even)."""
        total = sum(self.cardinalities)
        if total == 0:
            return 1.0
        return max(self.cardinalities) / (total / self.parts)

    def describe(self) -> str:
        return f"{self.extent} by {self.attr}, {self.parts} parts"
