"""AST for ADL — the paper's complex-object algebra (Section 3).

Every operator the paper uses appears here as an expression node:

* tuple operators: subscription ``e[a1..an]``, ``except`` update, access;
* constructors: tuple, set, literals;
* the *iterators* (operators with lambda parameters): map ``α``, select
  ``σ``, the join family ``⋈ ⋉ ▷ ⊣`` and the quantifiers ``∃ ∀``;
* restructuring: nest ``ν``, unnest ``μ``, flatten, project ``π``,
  rename ``ρ``;
* set algebra: ``∪ ∩ −``, Cartesian product ``×``, division ``÷``;
* aggregates and scalar operators;
* the Section 6 additions: the nestjoin ``⊣``, the (left) outerjoin used by
  the Ganski–Wong repair, and ``materialize`` for pointer dereferencing.

Nodes are frozen dataclasses: structurally comparable, hashable, safe to
share between rewritten plans.  Collections inside nodes are tuples so the
whole tree stays immutable.

Generic traversal: :meth:`Expr.child_exprs` yields every sub-expression and
:meth:`Expr.map_children` rebuilds a node with transformed children — the
rewrite engine is written entirely against these two methods, so adding a
node type never requires touching the engine.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

from repro.datamodel.errors import DataModelError
from repro.datamodel.values import Value, format_value

# ---------------------------------------------------------------------------
# Operator vocabularies
# ---------------------------------------------------------------------------

#: Arithmetic operator names accepted by :class:`Arith`.
ARITH_OPS = ("+", "-", "*", "/", "mod")

#: Scalar comparison operator names accepted by :class:`Compare`.
COMPARE_OPS = ("=", "!=", "<", "<=", ">", ">=")

#: Set comparison operator names accepted by :class:`SetCompare`, using the
#: paper's Table 1 vocabulary (``in`` is ``∈``, ``ni`` is ``∋`` i.e. the left
#: set *contains the right set as an element*).
SET_COMPARE_OPS = (
    "in",          # x.c ∈ Y'
    "notin",       # x.c ∉ Y'
    "subset",      # x.c ⊂ Y'   (proper)
    "subseteq",    # x.c ⊆ Y'
    "seteq",       # x.c = Y'
    "setneq",      # x.c ≠ Y'
    "supseteq",    # x.c ⊇ Y'
    "supset",      # x.c ⊃ Y'   (proper)
    "ni",          # x.c ∋ Y'   (Y' is an element of x.c)
    "notni",       # x.c ∌ Y'
    "disjoint",    # x.c ∩ Y' = ∅  (Table 2, third row)
)

#: Aggregate function names accepted by :class:`Aggregate`.
AGGREGATE_FUNCS = ("count", "sum", "min", "max", "avg")


class Expr:
    """Base class of all ADL expression nodes."""

    __slots__ = ()

    # -- generic traversal --------------------------------------------------
    def child_exprs(self) -> Iterator["Expr"]:
        """Yield every direct sub-expression, in field order."""
        for field in dataclasses.fields(self):  # type: ignore[arg-type]
            value = getattr(self, field.name)
            if isinstance(value, Expr):
                yield value
            elif isinstance(value, tuple):
                for item in value:
                    if isinstance(item, Expr):
                        yield item
                    elif (
                        isinstance(item, tuple)
                        and len(item) == 2
                        and isinstance(item[1], Expr)
                    ):
                        yield item[1]

    def map_children(self, fn: Callable[["Expr"], "Expr"]) -> "Expr":
        """Rebuild this node with ``fn`` applied to each direct child.

        Returns ``self`` unchanged (same object) when no child changed, which
        lets the rewrite engine detect fixpoints cheaply.
        """
        changes = {}
        for field in dataclasses.fields(self):  # type: ignore[arg-type]
            value = getattr(self, field.name)
            if isinstance(value, Expr):
                new = fn(value)
                if new is not value:
                    changes[field.name] = new
            elif isinstance(value, tuple):
                new_items = []
                dirty = False
                for item in value:
                    if isinstance(item, Expr):
                        new = fn(item)
                        dirty = dirty or new is not item
                        new_items.append(new)
                    elif (
                        isinstance(item, tuple)
                        and len(item) == 2
                        and isinstance(item[1], Expr)
                    ):
                        new = fn(item[1])
                        dirty = dirty or new is not item[1]
                        new_items.append((item[0], new))
                    else:
                        new_items.append(item)
                if dirty:
                    changes[field.name] = tuple(new_items)
        if not changes:
            return self
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal over the whole tree (self included)."""
        yield self
        for child in self.child_exprs():
            yield from child.walk()

    def __str__(self) -> str:  # pretty form; repr stays the dataclass form
        from repro.adl.pretty import pretty

        return pretty(self)


# ---------------------------------------------------------------------------
# Atoms, variables, base tables
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class Literal(Expr):
    """A constant value (atom, tuple value, or set value)."""

    value: Value

    def __repr__(self) -> str:
        return f"Literal({format_value(self.value)})"


@dataclass(frozen=True)
class Var(Expr):
    """A variable bound by an enclosing iterator (map/select/join/quantifier)."""

    name: str


@dataclass(frozen=True)
class ExtentRef(Expr):
    """A base table — the extension of a class (e.g. ``SUPPLIER``)."""

    name: str


@dataclass(frozen=True)
class Param(Expr):
    """A prepared-statement parameter placeholder ``$name``.

    Unlike :class:`Var`, a parameter is *not* bound by any iterator: it is
    closed (no free variables), constant for the duration of one execution,
    and resolved from the runtime's parameter bindings instead of the
    evaluation environment.  Rewrite rules and the cost model treat it as
    an opaque constant of unknown value, which is what lets one cached
    plan serve every binding of the same query shape.
    """

    name: str


# ---------------------------------------------------------------------------
# Tuple operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AttrAccess(Expr):
    """Attribute access / one step of a path expression: ``e.a``."""

    base: Expr
    attr: str


@dataclass(frozen=True)
class TupleExpr(Expr):
    """Tuple construction ``(a1 = e1, ..., an = en)``."""

    fields: Tuple[Tuple[str, Expr], ...]

    def __post_init__(self) -> None:
        names = [n for n, _ in self.fields]
        if len(names) != len(set(names)):
            raise DataModelError(f"duplicate attribute in tuple expression: {names}")

    def field(self, name: str) -> Expr:
        for n, e in self.fields:
            if n == name:
                return e
        raise DataModelError(f"tuple expression has no field {name!r}")


@dataclass(frozen=True)
class SetExpr(Expr):
    """Set construction ``{e1, ..., en}`` (the empty set is ``SetExpr(())``)."""

    elements: Tuple[Expr, ...]


@dataclass(frozen=True)
class TupleSubscript(Expr):
    """Tuple subscription ``e[a1, ..., an]`` (ADL operator 2)."""

    base: Expr
    attrs: Tuple[str, ...]


@dataclass(frozen=True)
class TupleUpdate(Expr):
    """The ``except`` operator (ADL operator 3): update/extend tuple fields."""

    base: Expr
    updates: Tuple[Tuple[str, Expr], ...]


@dataclass(frozen=True)
class Concat(Expr):
    """Tuple concatenation ``e1 o e2`` (used when spelling out join results)."""

    left: Expr
    right: Expr


# ---------------------------------------------------------------------------
# Scalar / boolean operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Arith(Expr):
    """Binary arithmetic: ``+ - * / mod``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ARITH_OPS:
            raise DataModelError(f"unknown arithmetic operator {self.op!r}")


@dataclass(frozen=True)
class Neg(Expr):
    """Unary arithmetic negation ``-e``."""

    operand: Expr


@dataclass(frozen=True)
class Compare(Expr):
    """Scalar comparison ``= != < <= > >=`` (equality works on any values)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in COMPARE_OPS:
            raise DataModelError(f"unknown comparison operator {self.op!r}")


@dataclass(frozen=True)
class SetCompare(Expr):
    """Set comparison (Table 1 / Table 2 vocabulary), e.g. ``x.c ⊆ Y'``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in SET_COMPARE_OPS:
            raise DataModelError(f"unknown set comparison operator {self.op!r}")


@dataclass(frozen=True)
class And(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Or(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr


@dataclass(frozen=True)
class IsEmpty(Expr):
    """``e = ∅`` as a first-class predicate (Table 2, first row)."""

    operand: Expr


# ---------------------------------------------------------------------------
# Quantifiers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Exists(Expr):
    """``∃ var ∈ source • pred`` — false over the empty set."""

    var: str
    source: Expr
    pred: Expr


@dataclass(frozen=True)
class Forall(Expr):
    """``∀ var ∈ source • pred`` — true over the empty set."""

    var: str
    source: Expr
    pred: Expr


# ---------------------------------------------------------------------------
# Iterators over sets
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Map(Expr):
    """The map operator ``α[var : body](source)`` (function application)."""

    var: str
    body: Expr
    source: Expr


@dataclass(frozen=True)
class Select(Expr):
    """The selection ``σ[var : pred](source)``."""

    var: str
    pred: Expr
    source: Expr


@dataclass(frozen=True)
class Project(Expr):
    """The projection ``π_{a1..an}(source)`` (ADL operator 6)."""

    source: Expr
    attrs: Tuple[str, ...]


@dataclass(frozen=True)
class Rename(Expr):
    """The renaming operator ``ρ_{old→new,...}(source)``."""

    source: Expr
    renames: Tuple[Tuple[str, str], ...]


# ---------------------------------------------------------------------------
# Restructuring
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Flatten(Expr):
    """Multiple union ``⊔(e) = {x | x ∈ X ∧ X ∈ e}`` (ADL operator 1)."""

    source: Expr


@dataclass(frozen=True)
class Unnest(Expr):
    """``μ_a(e)``: concatenate each element of ``x.a`` with the rest of ``x``."""

    source: Expr
    attr: str


@dataclass(frozen=True)
class Nest(Expr):
    """``ν_{A→a}(e)``: group by the non-``A`` attributes, collecting the
    ``A``-projections of each group into new set-valued attribute ``a``."""

    source: Expr
    attrs: Tuple[str, ...]
    as_attr: str


# ---------------------------------------------------------------------------
# Products and joins
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CartProd(Expr):
    """Extended Cartesian product (operand tuples are concatenated)."""

    left: Expr
    right: Expr


@dataclass(frozen=True)
class Join(Expr):
    """Regular join ``e1 ⋈⟨x1,x2 : p⟩ e2`` — concatenates matching tuples."""

    left: Expr
    right: Expr
    lvar: str
    rvar: str
    pred: Expr


@dataclass(frozen=True)
class SemiJoin(Expr):
    """Semijoin ``e1 ⋉⟨x1,x2 : p⟩ e2`` — left tuples with ≥1 match."""

    left: Expr
    right: Expr
    lvar: str
    rvar: str
    pred: Expr


@dataclass(frozen=True)
class AntiJoin(Expr):
    """Antijoin ``e1 ▷⟨x1,x2 : p⟩ e2`` — left tuples with no match."""

    left: Expr
    right: Expr
    lvar: str
    rvar: str
    pred: Expr


@dataclass(frozen=True)
class OuterJoin(Expr):
    """Left outerjoin: like ``Join`` but dangling left tuples survive with
    the right-hand attributes set to ``null`` — the [GaWo87] COUNT-bug
    repair the paper discusses in Section 5.2.2.

    ``right_attrs`` lists the right operand's top-level attributes so the
    null-padding is well-defined even when the right operand is empty.
    """

    left: Expr
    right: Expr
    lvar: str
    rvar: str
    pred: Expr
    right_attrs: Tuple[str, ...]


@dataclass(frozen=True)
class NestJoin(Expr):
    """The nestjoin ``e1 ⊣⟨x1,x2 : p ; f ; a⟩ e2`` (Definition 1 + the
    extended form of [StAB94]).

    Each left tuple is concatenated with a unary tuple ``(a = X)`` where
    ``X = { f(x1, x2) | x2 ∈ e2, p(x1, x2) }``.  Dangling left tuples keep
    an empty set — no tuple loss, hence no Complex Object bug.  ``result``
    is the paper's extra function parameter ``f``; the simple nestjoin of
    Definition 1 is ``result = Var(rvar)``.
    """

    left: Expr
    right: Expr
    lvar: str
    rvar: str
    pred: Expr
    as_attr: str
    result: Expr


@dataclass(frozen=True)
class Stitch(Expr):
    """The stitching operator of query shredding (PR 9, after
    [CLW14]'s shredded evaluation): semantically *identical* to the
    nestjoin ``left ⊣⟨x1,x2 : p ; f ; a⟩ right``, but annotated with
    ``key_attrs`` — the complete list of top-level attributes of
    ``left`` — which is what licenses a flat evaluation strategy.

    Because ``key_attrs`` covers every attribute of a left tuple, the
    pair ``(x1, x2)`` can be recovered from a *flat* join output ``z``
    as ``x1 = z[key_attrs]`` and ``x2 = z except-without key_attrs``:
    the synthetic grouping key linking the outer flat subplan to the
    inner one is simply the left tuple itself.  The physical plan runs
    the inner flat subplan ``left ⋈⟨x1,x2 : p⟩ right`` through the full
    pipeline (join-order DP, partitioned hash joins, batch kernels),
    groups its output by ``key_attrs``, and re-streams ``left`` so
    dangling tuples keep their empty set — no tuple loss, exactly the
    nestjoin's contract.
    """

    left: Expr
    right: Expr
    lvar: str
    rvar: str
    pred: Expr
    as_attr: str
    result: Expr
    key_attrs: Tuple[str, ...]


@dataclass(frozen=True)
class Division(Expr):
    """Relational division ``e1 ÷ e2`` ([Codd72], for universal
    quantification).  ``e1`` has attributes A ∪ B, ``e2`` has attributes B;
    the result keeps the A-projections whose group covers all of ``e2``."""

    left: Expr
    right: Expr


# ---------------------------------------------------------------------------
# Set algebra
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Union(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Intersect(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Difference(Expr):
    left: Expr
    right: Expr


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Aggregate(Expr):
    """``count/sum/min/max/avg`` over a set expression."""

    func: str
    source: Expr

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCS:
            raise DataModelError(f"unknown aggregate function {self.func!r}")


# ---------------------------------------------------------------------------
# Section 6: materialize
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Materialize(Expr):
    """The materialize operator of [BlMG93]: make inter-object references
    explicit by attaching, for every tuple of ``source``, the object(s)
    referenced by the oid(s) stored in attribute ``attr`` as a new attribute
    ``as_attr``.

    ``attr`` may hold a single oid (the new attribute is the referenced
    tuple) or a set of oids (the new attribute is the set of referenced
    tuples).  Physically this is the *assembly* pointer-based join.
    """

    source: Expr
    attr: str
    as_attr: str
    class_name: str


# Nodes whose first positional semantics is "this expression is a set".
SET_PRODUCING_NODES = (
    ExtentRef,
    SetExpr,
    Map,
    Select,
    Project,
    Rename,
    Flatten,
    Unnest,
    Nest,
    CartProd,
    Join,
    SemiJoin,
    AntiJoin,
    OuterJoin,
    NestJoin,
    Stitch,
    Division,
    Union,
    Intersect,
    Difference,
    Materialize,
)
