"""Alpha-equivalence for ADL expressions.

Rewrite rules invent bound-variable names, so tests comparing a rewritten
plan against an expected plan must ignore the particular names chosen.
:func:`canonicalize` renames every bound variable to a positional name
(``_v0``, ``_v1`` ...) in a deterministic traversal order; two expressions
are alpha-equivalent iff their canonical forms are structurally equal.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.adl import ast as A


def canonicalize(expr: A.Expr) -> A.Expr:
    """Rename all bound variables to ``_v0, _v1, ...`` deterministically."""
    counter = [0]

    def next_name() -> str:
        name = f"_v{counter[0]}"
        counter[0] += 1
        return name

    def rec(e: A.Expr, env: Dict[str, str]) -> A.Expr:
        if isinstance(e, A.Var):
            return A.Var(env.get(e.name, e.name))
        if isinstance(e, (A.Map, A.Select)):
            body_field = "body" if isinstance(e, A.Map) else "pred"
            source = rec(e.source, env)
            fresh = next_name()
            inner = dict(env)
            inner[e.var] = fresh
            body = rec(getattr(e, body_field), inner)
            return dataclasses.replace(e, var=fresh, source=source, **{body_field: body})
        if isinstance(e, (A.Exists, A.Forall)):
            source = rec(e.source, env)
            fresh = next_name()
            inner = dict(env)
            inner[e.var] = fresh
            pred = rec(e.pred, inner)
            return dataclasses.replace(e, var=fresh, source=source, pred=pred)
        if isinstance(e, (A.Join, A.SemiJoin, A.AntiJoin, A.OuterJoin, A.NestJoin)):
            left = rec(e.left, env)
            right = rec(e.right, env)
            fresh_l = next_name()
            fresh_r = next_name()
            inner = dict(env)
            inner[e.lvar] = fresh_l
            inner[e.rvar] = fresh_r
            changes = dict(left=left, right=right, lvar=fresh_l, rvar=fresh_r)
            changes["pred"] = rec(e.pred, inner)
            if isinstance(e, A.NestJoin):
                changes["result"] = rec(e.result, inner)
            return dataclasses.replace(e, **changes)
        return e.map_children(lambda child: rec(child, env))

    return rec(expr, {})


def alpha_equal(left: A.Expr, right: A.Expr) -> bool:
    """Structural equality up to renaming of bound variables."""
    return canonicalize(left) == canonicalize(right)
