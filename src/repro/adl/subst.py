"""Capture-avoiding substitution and bound-variable renaming for ADL.

The rewrite rules constantly substitute expressions for variables — e.g.
turning ``σ[x : x.c ∈ Y'](X) with Y' = σ[y : q](Y)`` into
``σ[x : ∃y ∈ Y • q ∧ y = x.c](X)`` replaces the subquery reference by its
definition *inside another binder's scope*.  Doing this naively would
capture variables; :func:`substitute` alpha-renames binders on demand.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Mapping

from repro.adl import ast as A
from repro.adl.freevars import all_var_names, free_vars, fresh_name


def substitute(expr: A.Expr, mapping: Mapping[str, A.Expr]) -> A.Expr:
    """Replace every free occurrence of each variable in ``mapping`` by the
    corresponding expression, alpha-renaming binders to avoid capture."""
    if not mapping:
        return expr
    return _subst(expr, dict(mapping))


def _subst(expr: A.Expr, mapping: Dict[str, A.Expr]) -> A.Expr:
    if isinstance(expr, A.Var):
        return mapping.get(expr.name, expr)

    if isinstance(expr, (A.Map, A.Select)):
        body_field = "body" if isinstance(expr, A.Map) else "pred"
        body = getattr(expr, body_field)
        new_source = _subst(expr.source, mapping)
        inner_mapping = {k: v for k, v in mapping.items() if k != expr.var}
        var, body = _avoid_capture_one(expr.var, body, inner_mapping)
        new_body = _subst(body, inner_mapping) if inner_mapping else body
        return dataclasses.replace(expr, var=var, source=new_source, **{body_field: new_body})

    if isinstance(expr, (A.Exists, A.Forall)):
        new_source = _subst(expr.source, mapping)
        inner_mapping = {k: v for k, v in mapping.items() if k != expr.var}
        var, pred = _avoid_capture_one(expr.var, expr.pred, inner_mapping)
        new_pred = _subst(pred, inner_mapping) if inner_mapping else pred
        return dataclasses.replace(expr, var=var, source=new_source, pred=new_pred)

    if isinstance(expr, (A.Join, A.SemiJoin, A.AntiJoin, A.OuterJoin)):
        new_left = _subst(expr.left, mapping)
        new_right = _subst(expr.right, mapping)
        inner_mapping = {k: v for k, v in mapping.items() if k not in (expr.lvar, expr.rvar)}
        lvar, rvar, (pred,) = _avoid_capture_two(
            expr.lvar, expr.rvar, (expr.pred,), inner_mapping
        )
        new_pred = _subst(pred, inner_mapping) if inner_mapping else pred
        return dataclasses.replace(
            expr, left=new_left, right=new_right, lvar=lvar, rvar=rvar, pred=new_pred
        )

    if isinstance(expr, (A.NestJoin, A.Stitch)):
        new_left = _subst(expr.left, mapping)
        new_right = _subst(expr.right, mapping)
        inner_mapping = {k: v for k, v in mapping.items() if k not in (expr.lvar, expr.rvar)}
        lvar, rvar, (pred, result) = _avoid_capture_two(
            expr.lvar, expr.rvar, (expr.pred, expr.result), inner_mapping
        )
        new_pred = _subst(pred, inner_mapping) if inner_mapping else pred
        new_result = _subst(result, inner_mapping) if inner_mapping else result
        return dataclasses.replace(
            expr,
            left=new_left,
            right=new_right,
            lvar=lvar,
            rvar=rvar,
            pred=new_pred,
            result=new_result,
        )

    return expr.map_children(lambda child: _subst(child, mapping))


def _replacement_free_vars(mapping: Dict[str, A.Expr]) -> FrozenSet[str]:
    out: FrozenSet[str] = frozenset()
    for repl in mapping.values():
        out |= free_vars(repl)
    return out


def _avoid_capture_one(var: str, body: A.Expr, mapping: Dict[str, A.Expr]):
    """Rename ``var`` in ``body`` when a replacement would be captured."""
    if not mapping:
        return var, body
    dangerous = _replacement_free_vars(mapping)
    if var not in dangerous:
        return var, body
    avoid = dangerous | all_var_names(body) | frozenset(mapping)
    new_var = fresh_name(var, avoid)
    return new_var, _subst(body, {var: A.Var(new_var)})


def _avoid_capture_two(lvar: str, rvar: str, bodies, mapping: Dict[str, A.Expr]):
    """Rename the two join variables as needed; both scope over each body."""
    if not mapping:
        return lvar, rvar, bodies
    dangerous = _replacement_free_vars(mapping)
    avoid = dangerous | frozenset(mapping)
    for body in bodies:
        avoid |= all_var_names(body)
    renames: Dict[str, A.Expr] = {}
    new_lvar, new_rvar = lvar, rvar
    if lvar in dangerous:
        new_lvar = fresh_name(lvar, avoid)
        avoid |= {new_lvar}
        renames[lvar] = A.Var(new_lvar)
    if rvar in dangerous:
        new_rvar = fresh_name(rvar, avoid)
        avoid |= {new_rvar}
        renames[rvar] = A.Var(new_rvar)
    if renames:
        bodies = tuple(_subst(body, renames) for body in bodies)
    return new_lvar, new_rvar, bodies


def rename_bound(expr: A.Expr, old: str, new: str) -> A.Expr:
    """Alpha-rename: rewrite binders named ``old`` (and their bound
    occurrences) to ``new``.  Free occurrences of ``old`` are untouched."""

    def rec(e: A.Expr) -> A.Expr:
        if isinstance(e, (A.Map, A.Select)):
            body_field = "body" if isinstance(e, A.Map) else "pred"
            body = getattr(e, body_field)
            source = rec(e.source)
            if e.var == old:
                body = substitute(body, {old: A.Var(new)})
                return dataclasses.replace(e, var=new, source=source, **{body_field: body})
            return dataclasses.replace(e, source=source, **{body_field: rec(body)})
        if isinstance(e, (A.Exists, A.Forall)):
            source = rec(e.source)
            if e.var == old:
                pred = substitute(e.pred, {old: A.Var(new)})
                return dataclasses.replace(e, var=new, source=source, pred=pred)
            return dataclasses.replace(e, source=source, pred=rec(e.pred))
        if isinstance(
            e, (A.Join, A.SemiJoin, A.AntiJoin, A.OuterJoin, A.NestJoin, A.Stitch)
        ):
            left = rec(e.left)
            right = rec(e.right)
            if old in (e.lvar, e.rvar):
                mapping = {old: A.Var(new)}
                changes = dict(left=left, right=right)
                changes["lvar"] = new if e.lvar == old else e.lvar
                changes["rvar"] = new if e.rvar == old else e.rvar
                changes["pred"] = substitute(e.pred, mapping)
                if isinstance(e, (A.NestJoin, A.Stitch)):
                    changes["result"] = substitute(e.result, mapping)
                return dataclasses.replace(e, **changes)
            changes = dict(left=left, right=right, pred=rec(e.pred))
            if isinstance(e, (A.NestJoin, A.Stitch)):
                changes["result"] = rec(e.result)
            return dataclasses.replace(e, **changes)
        return e.map_children(rec)

    return rec(expr)
