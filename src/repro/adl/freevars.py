"""Free- and bound-variable analysis for ADL expressions.

Correlation detection — the heart of the unnesting rules — is a
free-variable question: a subquery ``σ[y : Q](Y)`` nested inside
``σ[x : ...](X)`` is *correlated* iff ``x`` occurs free in ``Q`` (or in
``Y``).  Rule 1 additionally requires the outer variable to be *not* free in
the inner operand (the paper's side condition "let x not be free in Y").

The binder structure of ADL:

* ``Map(var, body, source)`` / ``Select(var, pred, source)`` bind ``var``
  in ``body`` / ``pred`` — but not in ``source``;
* ``Exists/Forall(var, source, pred)`` bind ``var`` in ``pred`` only;
* the join family binds ``lvar`` and ``rvar`` in ``pred`` (and in
  ``result`` for the nestjoin) — never in the operands.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Set, Tuple

from repro.adl import ast as A

#: Identity-keyed memo for :func:`free_vars`.  ADL nodes are frozen, so a
#: node's free-variable set never changes; keying by ``id`` and keeping a
#: strong reference to the node (so its id cannot be recycled) makes the
#: lookup O(1) without hashing whole subtrees.  The planner's join-recipe
#: orientation checks and half the rewrite rules call ``free_vars`` on the
#: same shared subexpressions over and over — with the memo each distinct
#: node is analyzed once per process instead of once per call.
_CACHE: Dict[int, Tuple[A.Expr, FrozenSet[str]]] = {}

#: Flush threshold — keeps long-running processes from pinning every
#: expression ever analyzed.  Rewrite fixpoints stay far below this.
_CACHE_LIMIT = 1 << 18


def free_vars(expr: A.Expr) -> FrozenSet[str]:
    """The set of variables occurring free in ``expr`` (memoized)."""
    entry = _CACHE.get(id(expr))
    if entry is not None and entry[0] is expr:
        return entry[1]
    result = _free_vars(expr)
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.clear()
    _CACHE[id(expr)] = (expr, result)
    return result


def _free_vars(expr: A.Expr) -> FrozenSet[str]:
    if isinstance(expr, A.Var):
        return frozenset((expr.name,))
    if isinstance(expr, (A.Map, A.Select)):
        body = expr.body if isinstance(expr, A.Map) else expr.pred
        return free_vars(expr.source) | (free_vars(body) - {expr.var})
    if isinstance(expr, (A.Exists, A.Forall)):
        return free_vars(expr.source) | (free_vars(expr.pred) - {expr.var})
    if isinstance(expr, (A.Join, A.SemiJoin, A.AntiJoin, A.OuterJoin)):
        bound = {expr.lvar, expr.rvar}
        return (
            free_vars(expr.left)
            | free_vars(expr.right)
            | (free_vars(expr.pred) - bound)
        )
    if isinstance(expr, (A.NestJoin, A.Stitch)):
        bound = {expr.lvar, expr.rvar}
        return (
            free_vars(expr.left)
            | free_vars(expr.right)
            | (free_vars(expr.pred) - bound)
            | (free_vars(expr.result) - bound)
        )
    out: Set[str] = set()
    for child in expr.child_exprs():
        out |= free_vars(child)
    return frozenset(out) if out else _EMPTY


_EMPTY: FrozenSet[str] = frozenset()


def bound_vars(expr: A.Expr) -> FrozenSet[str]:
    """Every variable name bound by some iterator anywhere in ``expr``."""
    out: Set[str] = set()
    for node in expr.walk():
        if isinstance(node, (A.Map, A.Select, A.Exists, A.Forall)):
            out.add(node.var)
        elif isinstance(
            node, (A.Join, A.SemiJoin, A.AntiJoin, A.OuterJoin, A.NestJoin, A.Stitch)
        ):
            out.add(node.lvar)
            out.add(node.rvar)
    return frozenset(out)


def all_var_names(expr: A.Expr) -> FrozenSet[str]:
    """Free plus bound names — the universe to avoid when inventing names."""
    return free_vars(expr) | bound_vars(expr)


def fresh_name(base: str, avoid: FrozenSet[str]) -> str:
    """A variable name not in ``avoid``, derived from ``base``.

    Keeps ``base`` itself when it is already free to use, otherwise appends
    a numeric suffix (``y``, ``y1``, ``y2`` ...).
    """
    if base not in avoid:
        return base
    i = 1
    while f"{base}{i}" in avoid:
        i += 1
    return f"{base}{i}"


def fresh_names(bases: Iterator[str], avoid: FrozenSet[str]):
    """Generate pairwise-distinct fresh names for each base, threading the
    avoid-set so later names also avoid earlier ones."""
    taken = set(avoid)
    out = []
    for base in bases:
        name = fresh_name(base, frozenset(taken))
        taken.add(name)
        out.append(name)
    return out


def is_correlated(inner: A.Expr, outer_var: str) -> bool:
    """Does the subquery ``inner`` reference the enclosing iterator variable?

    This is the paper's footnote-1 definition of a correlated subquery.
    """
    return outer_var in free_vars(inner)
