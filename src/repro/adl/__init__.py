"""ADL — the paper's complex-object algebra (Section 3).

Submodules:

* :mod:`repro.adl.ast` — expression nodes for every operator;
* :mod:`repro.adl.builders` — terse constructors;
* :mod:`repro.adl.freevars` — free/bound variable analysis (correlation);
* :mod:`repro.adl.subst` — capture-avoiding substitution;
* :mod:`repro.adl.compare` — alpha-equivalence;
* :mod:`repro.adl.pretty` — the paper's surface notation;
* :mod:`repro.adl.parser` — its inverse (the fragment-shipping surface);
* :mod:`repro.adl.typecheck` — static typing.
"""

from repro.adl import ast
from repro.adl.compare import alpha_equal, canonicalize
from repro.adl.freevars import (
    all_var_names,
    bound_vars,
    free_vars,
    fresh_name,
    is_correlated,
)
from repro.adl.parser import parse_adl
from repro.adl.pretty import pretty, pretty_tree
from repro.adl.subst import rename_bound, substitute
from repro.adl.typecheck import TypeChecker

__all__ = [
    "TypeChecker",
    "all_var_names",
    "alpha_equal",
    "ast",
    "bound_vars",
    "canonicalize",
    "free_vars",
    "fresh_name",
    "is_correlated",
    "parse_adl",
    "pretty",
    "pretty_tree",
    "rename_bound",
    "substitute",
]
