"""Terse constructors for ADL expressions.

Tests and rewrite rules build a lot of algebra by hand; these helpers keep
that construction close to the paper's notation::

    sel("x", exists("y", extent("Y"), eq(attr("y", "a"), attr("x", "a"))),
        extent("X"))
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Union

from repro.adl import ast as A
from repro.datamodel.values import Value

ExprLike = Union[A.Expr, int, float, str, bool, None]


def lift(value: ExprLike) -> A.Expr:
    """Wrap a raw Python scalar into a :class:`Literal`; pass exprs through."""
    if isinstance(value, A.Expr):
        return value
    return A.Literal(value)


def lit(value: Value) -> A.Literal:
    return A.Literal(value)


def var(name: str) -> A.Var:
    return A.Var(name)


def extent(name: str) -> A.ExtentRef:
    return A.ExtentRef(name)


def attr(base: ExprLike, *path: str) -> A.Expr:
    """Attribute access; multiple names build a path: ``attr(x, "a", "b")``."""
    expr = lift(base)
    if isinstance(expr, A.Literal) and isinstance(expr.value, str) and not path:
        raise TypeError("attr() needs at least one attribute name")
    for name in path:
        expr = A.AttrAccess(expr, name)
    return expr


def tup(fields: Optional[Mapping[str, ExprLike]] = None, **kw: ExprLike) -> A.TupleExpr:
    items = []
    if fields:
        items.extend((n, lift(e)) for n, e in fields.items())
    items.extend((n, lift(e)) for n, e in kw.items())
    return A.TupleExpr(tuple(items))


def setexpr(*elements: ExprLike) -> A.SetExpr:
    return A.SetExpr(tuple(lift(e) for e in elements))


EMPTY = A.SetExpr(())


def subscript(base: ExprLike, *attrs: str) -> A.TupleSubscript:
    return A.TupleSubscript(lift(base), tuple(attrs))


def tupdate(base: ExprLike, **updates: ExprLike) -> A.TupleUpdate:
    return A.TupleUpdate(lift(base), tuple((n, lift(e)) for n, e in updates.items()))


# -- scalar operators ---------------------------------------------------------

def eq(left: ExprLike, right: ExprLike) -> A.Compare:
    return A.Compare("=", lift(left), lift(right))


def neq(left: ExprLike, right: ExprLike) -> A.Compare:
    return A.Compare("!=", lift(left), lift(right))


def lt(left: ExprLike, right: ExprLike) -> A.Compare:
    return A.Compare("<", lift(left), lift(right))


def le(left: ExprLike, right: ExprLike) -> A.Compare:
    return A.Compare("<=", lift(left), lift(right))


def gt(left: ExprLike, right: ExprLike) -> A.Compare:
    return A.Compare(">", lift(left), lift(right))


def ge(left: ExprLike, right: ExprLike) -> A.Compare:
    return A.Compare(">=", lift(left), lift(right))


def add(left: ExprLike, right: ExprLike) -> A.Arith:
    return A.Arith("+", lift(left), lift(right))


def sub(left: ExprLike, right: ExprLike) -> A.Arith:
    return A.Arith("-", lift(left), lift(right))


def mul(left: ExprLike, right: ExprLike) -> A.Arith:
    return A.Arith("*", lift(left), lift(right))


# -- boolean connectives -------------------------------------------------------

def conj(*preds: ExprLike) -> A.Expr:
    """Right-nested conjunction; ``conj()`` is ``true``."""
    exprs = [lift(p) for p in preds]
    if not exprs:
        return A.Literal(True)
    out = exprs[-1]
    for p in reversed(exprs[:-1]):
        out = A.And(p, out)
    return out


def disj(*preds: ExprLike) -> A.Expr:
    exprs = [lift(p) for p in preds]
    if not exprs:
        return A.Literal(False)
    out = exprs[-1]
    for p in reversed(exprs[:-1]):
        out = A.Or(p, out)
    return out


def neg(pred: ExprLike) -> A.Not:
    return A.Not(lift(pred))


def is_empty(operand: ExprLike) -> A.IsEmpty:
    return A.IsEmpty(lift(operand))


# -- set comparisons ------------------------------------------------------------

def member(element: ExprLike, of: ExprLike) -> A.SetCompare:
    return A.SetCompare("in", lift(element), lift(of))


def not_member(element: ExprLike, of: ExprLike) -> A.SetCompare:
    return A.SetCompare("notin", lift(element), lift(of))


def subseteq(left: ExprLike, right: ExprLike) -> A.SetCompare:
    return A.SetCompare("subseteq", lift(left), lift(right))


def subset(left: ExprLike, right: ExprLike) -> A.SetCompare:
    return A.SetCompare("subset", lift(left), lift(right))


def seteq(left: ExprLike, right: ExprLike) -> A.SetCompare:
    return A.SetCompare("seteq", lift(left), lift(right))


def supseteq(left: ExprLike, right: ExprLike) -> A.SetCompare:
    return A.SetCompare("supseteq", lift(left), lift(right))


def supset(left: ExprLike, right: ExprLike) -> A.SetCompare:
    return A.SetCompare("supset", lift(left), lift(right))


def ni(left: ExprLike, right: ExprLike) -> A.SetCompare:
    return A.SetCompare("ni", lift(left), lift(right))


def disjoint(left: ExprLike, right: ExprLike) -> A.SetCompare:
    return A.SetCompare("disjoint", lift(left), lift(right))


# -- quantifiers -----------------------------------------------------------------

def exists(v: str, source: ExprLike, pred: ExprLike) -> A.Exists:
    return A.Exists(v, lift(source), lift(pred))


def forall(v: str, source: ExprLike, pred: ExprLike) -> A.Forall:
    return A.Forall(v, lift(source), lift(pred))


# -- iterators ---------------------------------------------------------------------

def amap(v: str, body: ExprLike, source: ExprLike) -> A.Map:
    return A.Map(v, lift(body), lift(source))


def sel(v: str, pred: ExprLike, source: ExprLike) -> A.Select:
    return A.Select(v, lift(pred), lift(source))


def project(source: ExprLike, *attrs: str) -> A.Project:
    return A.Project(lift(source), tuple(attrs))


def rename(source: ExprLike, **renames: str) -> A.Rename:
    return A.Rename(lift(source), tuple(renames.items()))


def flatten(source: ExprLike) -> A.Flatten:
    return A.Flatten(lift(source))


def unnest(source: ExprLike, attribute: str) -> A.Unnest:
    return A.Unnest(lift(source), attribute)


def nest(source: ExprLike, attrs: Iterable[str], as_attr: str) -> A.Nest:
    return A.Nest(lift(source), tuple(attrs), as_attr)


# -- joins ----------------------------------------------------------------------------

def cart(left: ExprLike, right: ExprLike) -> A.CartProd:
    return A.CartProd(lift(left), lift(right))


def join(left: ExprLike, right: ExprLike, lvar: str, rvar: str, pred: ExprLike) -> A.Join:
    return A.Join(lift(left), lift(right), lvar, rvar, lift(pred))


def semijoin(left: ExprLike, right: ExprLike, lvar: str, rvar: str, pred: ExprLike) -> A.SemiJoin:
    return A.SemiJoin(lift(left), lift(right), lvar, rvar, lift(pred))


def antijoin(left: ExprLike, right: ExprLike, lvar: str, rvar: str, pred: ExprLike) -> A.AntiJoin:
    return A.AntiJoin(lift(left), lift(right), lvar, rvar, lift(pred))


def outerjoin(
    left: ExprLike,
    right: ExprLike,
    lvar: str,
    rvar: str,
    pred: ExprLike,
    right_attrs: Iterable[str],
) -> A.OuterJoin:
    return A.OuterJoin(lift(left), lift(right), lvar, rvar, lift(pred), tuple(right_attrs))


def nestjoin(
    left: ExprLike,
    right: ExprLike,
    lvar: str,
    rvar: str,
    pred: ExprLike,
    as_attr: str,
    result: Optional[ExprLike] = None,
) -> A.NestJoin:
    """The nestjoin; ``result`` defaults to the right variable (simple form)."""
    body = lift(result) if result is not None else A.Var(rvar)
    return A.NestJoin(lift(left), lift(right), lvar, rvar, lift(pred), as_attr, body)


def division(left: ExprLike, right: ExprLike) -> A.Division:
    return A.Division(lift(left), lift(right))


def union(left: ExprLike, right: ExprLike) -> A.Union:
    return A.Union(lift(left), lift(right))


def intersect(left: ExprLike, right: ExprLike) -> A.Intersect:
    return A.Intersect(lift(left), lift(right))


def difference(left: ExprLike, right: ExprLike) -> A.Difference:
    return A.Difference(lift(left), lift(right))


# -- aggregates -------------------------------------------------------------------------

def count(source: ExprLike) -> A.Aggregate:
    return A.Aggregate("count", lift(source))


def agg(func: str, source: ExprLike) -> A.Aggregate:
    return A.Aggregate(func, lift(source))


def materialize(source: ExprLike, attribute: str, as_attr: str, class_name: str) -> A.Materialize:
    return A.Materialize(lift(source), attribute, as_attr, class_name)
