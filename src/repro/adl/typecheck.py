"""Static type checker for ADL expressions.

ADL is a *typed* algebra (Section 3): the checker below assigns every
expression a :mod:`repro.datamodel.types` type or raises
:class:`TypeCheckError`.  It is used three ways:

* the translator consults it to disambiguate ``=`` between scalar and set
  equality and to resolve path expressions through object references;
* the rewrite engine can (optionally) re-check every rewrite output, which
  the test suite does for all paper derivations;
* the physical planner reads operand tuple types to pick join columns.

Path expressions through references (``e.supplier.sname`` where
``supplier : oid(Supplier)``) type-check by *implicit dereference*: an
attribute access on an ``oid(C)`` value looks the attribute up in class
``C``'s object type.  The materialize operator makes the same dereference
explicit (Section 6.2); the checker treats both identically.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.adl import ast as A
from repro.datamodel.errors import TypeCheckError
from repro.datamodel.schema import Schema
from repro.datamodel.types import (
    ANY,
    BOOL,
    FLOAT,
    INT,
    AnyType,
    AtomType,
    OidType,
    SetType,
    TupleType,
    Type,
    is_comparable,
    is_numeric,
    type_of_value,
    unify,
)


class TypeChecker:
    """Checks ADL expressions against a schema and a variable environment."""

    def __init__(self, schema: Optional[Schema] = None) -> None:
        self.schema = schema

    # -- public API --------------------------------------------------------
    def check(self, expr: A.Expr, env: Optional[Mapping[str, Type]] = None) -> Type:
        return self._check(expr, dict(env or {}))

    # -- helpers -------------------------------------------------------------
    def _elem(self, expr: A.Expr, env: Dict[str, Type], what: str) -> Type:
        t = self._check(expr, env)
        if isinstance(t, AnyType):
            return ANY
        if not isinstance(t, SetType):
            raise TypeCheckError(f"{what} must be a set, got {t!r} in {expr}")
        return t.element

    def _tuple_elem(self, expr: A.Expr, env: Dict[str, Type], what: str) -> TupleType:
        elem = self._elem(expr, env, what)
        if isinstance(elem, AnyType):
            return TupleType({})
        if not isinstance(elem, TupleType):
            raise TypeCheckError(f"{what} must be a set of tuples, got element {elem!r}")
        return elem

    def _bool(self, expr: A.Expr, env: Dict[str, Type], what: str) -> None:
        t = self._check(expr, env)
        if not BOOL.is_assignable_from(t):
            raise TypeCheckError(f"{what} must be boolean, got {t!r} in {expr}")

    def _deref(self, t: Type, attribute: str, context: A.Expr) -> Type:
        """Attribute lookup with implicit dereference of oid references."""
        if isinstance(t, AnyType):
            return ANY
        if isinstance(t, TupleType):
            return t.field(attribute)
        if isinstance(t, OidType):
            if self.schema is None or t.class_name is None:
                raise TypeCheckError(
                    f"cannot dereference untyped oid for attribute {attribute!r} in {context}"
                )
            return self.schema.object_type(t.class_name).field(attribute)
        raise TypeCheckError(f"attribute access {attribute!r} on non-tuple type {t!r} in {context}")

    @staticmethod
    def _concat_types(left: TupleType, right: TupleType, what: str) -> TupleType:
        clash = set(left.fields) & set(right.fields)
        if clash:
            raise TypeCheckError(f"{what}: attribute clash {sorted(clash)}")
        merged = dict(left.fields)
        merged.update(right.fields)
        return TupleType(merged)

    # -- the checker ---------------------------------------------------------
    def _check(self, expr: A.Expr, env: Dict[str, Type]) -> Type:
        if isinstance(expr, A.Literal):
            return type_of_value(expr.value)

        if isinstance(expr, A.Var):
            try:
                return env[expr.name]
            except KeyError:
                raise TypeCheckError(f"unbound variable {expr.name!r}") from None

        if isinstance(expr, A.ExtentRef):
            if self.schema is None:
                raise TypeCheckError(f"no schema available to resolve extent {expr.name!r}")
            return self.schema.extent_type(expr.name)

        if isinstance(expr, A.Param):
            # execution-time binding: type unknown until a value is supplied
            return ANY

        if isinstance(expr, A.AttrAccess):
            return self._deref(self._check(expr.base, env), expr.attr, expr)

        if isinstance(expr, A.TupleExpr):
            return TupleType({n: self._check(e, env) for n, e in expr.fields})

        if isinstance(expr, A.SetExpr):
            element: Type = ANY
            for item in expr.elements:
                element = unify(element, self._check(item, env), "set expression")
            return SetType(element)

        if isinstance(expr, A.TupleSubscript):
            base = self._check(expr.base, env)
            if isinstance(base, AnyType):
                return ANY
            if not isinstance(base, TupleType):
                raise TypeCheckError(f"tuple subscription on non-tuple {base!r}")
            return base.subscript(expr.attrs)

        if isinstance(expr, A.TupleUpdate):
            base = self._check(expr.base, env)
            if isinstance(base, AnyType):
                base = TupleType({})
            if not isinstance(base, TupleType):
                raise TypeCheckError(f"'except' on non-tuple {base!r}")
            fields = dict(base.fields)
            for name, e in expr.updates:
                fields[name] = self._check(e, env)
            return TupleType(fields)

        if isinstance(expr, A.Concat):
            left = self._check(expr.left, env)
            right = self._check(expr.right, env)
            if not isinstance(left, TupleType) or not isinstance(right, TupleType):
                raise TypeCheckError("tuple concatenation needs tuple operands")
            return self._concat_types(left, right, "concatenation")

        if isinstance(expr, A.Arith):
            left = self._check(expr.left, env)
            right = self._check(expr.right, env)
            for t in (left, right):
                if not (isinstance(t, AnyType) or is_numeric(t)):
                    raise TypeCheckError(f"arithmetic on non-numeric {t!r} in {expr}")
            out = unify(left, right, "arithmetic")
            if expr.op == "/":
                return FLOAT
            return out if not isinstance(out, AnyType) else INT

        if isinstance(expr, A.Neg):
            t = self._check(expr.operand, env)
            if not (isinstance(t, AnyType) or is_numeric(t)):
                raise TypeCheckError(f"negation of non-numeric {t!r}")
            return t

        if isinstance(expr, A.Compare):
            left = self._check(expr.left, env)
            right = self._check(expr.right, env)
            unify(left, right, f"comparison {expr.op}")
            if expr.op not in ("=", "!="):
                for t in (left, right):
                    if not (isinstance(t, AnyType) or is_comparable(t)):
                        raise TypeCheckError(f"ordering {expr.op} on non-comparable {t!r}")
            return BOOL

        if isinstance(expr, A.SetCompare):
            return self._check_setcompare(expr, env)

        if isinstance(expr, (A.And, A.Or)):
            self._bool(expr.left, env, "boolean operand")
            self._bool(expr.right, env, "boolean operand")
            return BOOL

        if isinstance(expr, A.Not):
            self._bool(expr.operand, env, "negated operand")
            return BOOL

        if isinstance(expr, A.IsEmpty):
            self._elem(expr.operand, env, "emptiness test operand")
            return BOOL

        if isinstance(expr, (A.Exists, A.Forall)):
            element = self._elem(expr.source, env, "quantifier range")
            inner = dict(env)
            inner[expr.var] = element
            self._bool(expr.pred, inner, "quantifier body")
            return BOOL

        if isinstance(expr, A.Map):
            element = self._elem(expr.source, env, "map operand")
            inner = dict(env)
            inner[expr.var] = element
            return SetType(self._check(expr.body, inner))

        if isinstance(expr, A.Select):
            t = self._check(expr.source, env)
            if isinstance(t, AnyType):
                t = SetType(ANY)
            if not isinstance(t, SetType):
                raise TypeCheckError(f"selection operand must be a set, got {t!r}")
            inner = dict(env)
            inner[expr.var] = t.element
            self._bool(expr.pred, inner, "selection predicate")
            return t

        if isinstance(expr, A.Project):
            element = self._tuple_elem(expr.source, env, "projection operand")
            return SetType(element.subscript(expr.attrs))

        if isinstance(expr, A.Rename):
            element = self._tuple_elem(expr.source, env, "rename operand")
            fields = dict(element.fields)
            for old, new in expr.renames:
                if old not in fields:
                    raise TypeCheckError(f"rename of missing attribute {old!r}")
                if new in fields and new != old:
                    raise TypeCheckError(f"rename target {new!r} already exists")
            for old, new in expr.renames:
                fields[new] = fields.pop(old)
            return SetType(TupleType(fields))

        if isinstance(expr, A.Flatten):
            element = self._elem(expr.source, env, "flatten operand")
            if isinstance(element, AnyType):
                return SetType(ANY)
            if not isinstance(element, SetType):
                raise TypeCheckError(f"flatten needs a set of sets, got element {element!r}")
            return element

        if isinstance(expr, A.Unnest):
            element = self._tuple_elem(expr.source, env, "unnest operand")
            inner = element.field(expr.attr)
            if isinstance(inner, AnyType):
                return SetType(ANY)
            if not isinstance(inner, SetType):
                raise TypeCheckError(f"unnest attribute {expr.attr!r} is not set-valued: {inner!r}")
            inner_elem = inner.element
            if isinstance(inner_elem, AnyType):
                inner_elem = TupleType({})
            if not isinstance(inner_elem, TupleType):
                raise TypeCheckError(
                    f"unnest attribute {expr.attr!r} must hold tuples, got {inner_elem!r}"
                )
            rest = element.drop((expr.attr,))
            return SetType(self._concat_types(inner_elem, rest, "unnest"))

        if isinstance(expr, A.Nest):
            element = self._tuple_elem(expr.source, env, "nest operand")
            for a in expr.attrs:
                element.field(a)  # existence check
            rest = element.drop(expr.attrs)
            if expr.as_attr in rest.fields:
                raise TypeCheckError(f"nest target attribute {expr.as_attr!r} already exists")
            grouped = SetType(element.subscript(expr.attrs))
            fields = dict(rest.fields)
            fields[expr.as_attr] = grouped
            return SetType(TupleType(fields))

        if isinstance(expr, A.CartProd):
            left = self._tuple_elem(expr.left, env, "product operand")
            right = self._tuple_elem(expr.right, env, "product operand")
            return SetType(self._concat_types(left, right, "product"))

        if isinstance(expr, (A.Join, A.OuterJoin)):
            left = self._tuple_elem(expr.left, env, "join operand")
            right = self._tuple_elem(expr.right, env, "join operand")
            inner = dict(env)
            inner[expr.lvar] = left
            inner[expr.rvar] = right
            self._bool(expr.pred, inner, "join predicate")
            if isinstance(expr, A.OuterJoin) and right.fields and set(expr.right_attrs) != set(right.fields):
                raise TypeCheckError(
                    f"outerjoin right_attrs {sorted(expr.right_attrs)} do not match "
                    f"right operand attributes {sorted(right.fields)}"
                )
            return SetType(self._concat_types(left, right, "join"))

        if isinstance(expr, (A.SemiJoin, A.AntiJoin)):
            left_t = self._check(expr.left, env)
            left = self._tuple_elem(expr.left, env, "semijoin operand")
            right = self._tuple_elem(expr.right, env, "semijoin operand")
            inner = dict(env)
            inner[expr.lvar] = left
            inner[expr.rvar] = right
            self._bool(expr.pred, inner, "semijoin predicate")
            return left_t if isinstance(left_t, SetType) else SetType(left)

        if isinstance(expr, A.NestJoin):
            left = self._tuple_elem(expr.left, env, "nestjoin operand")
            right = self._tuple_elem(expr.right, env, "nestjoin operand")
            inner = dict(env)
            inner[expr.lvar] = left
            inner[expr.rvar] = right
            self._bool(expr.pred, inner, "nestjoin predicate")
            result_t = self._check(expr.result, inner)
            if expr.as_attr in left.fields:
                raise TypeCheckError(
                    f"nestjoin attribute {expr.as_attr!r} clashes with left operand"
                )
            fields = dict(left.fields)
            fields[expr.as_attr] = SetType(result_t)
            return SetType(TupleType(fields))

        if isinstance(expr, A.Stitch):
            left = self._tuple_elem(expr.left, env, "stitch operand")
            right = self._tuple_elem(expr.right, env, "stitch operand")
            inner = dict(env)
            inner[expr.lvar] = left
            inner[expr.rvar] = right
            self._bool(expr.pred, inner, "stitch predicate")
            result_t = self._check(expr.result, inner)
            if expr.as_attr in left.fields:
                raise TypeCheckError(
                    f"stitch attribute {expr.as_attr!r} clashes with left operand"
                )
            # key_attrs must cover the left operand exactly (that is what
            # licenses recovering the pair from the flat join output) and
            # stay disjoint from the right operand's attributes
            if left.fields and set(expr.key_attrs) != set(left.fields):
                raise TypeCheckError(
                    f"stitch key attributes {sorted(expr.key_attrs)} do not match "
                    f"left operand attributes {sorted(left.fields)}"
                )
            if left.fields and right.fields and set(left.fields) & set(right.fields):
                raise TypeCheckError(
                    "stitch operands must have disjoint attributes, got overlap "
                    f"{sorted(set(left.fields) & set(right.fields))}"
                )
            fields = dict(left.fields)
            fields[expr.as_attr] = SetType(result_t)
            return SetType(TupleType(fields))

        if isinstance(expr, A.Division):
            left = self._tuple_elem(expr.left, env, "division dividend")
            right = self._tuple_elem(expr.right, env, "division divisor")
            if not set(right.fields) <= set(left.fields):
                raise TypeCheckError(
                    "division divisor attributes must be a subset of dividend attributes"
                )
            for name, t in right.fields.items():
                unify(left.fields[name], t, f"division attribute {name}")
            keep = [a for a in left.fields if a not in right.fields]
            return SetType(left.subscript(keep))

        if isinstance(expr, (A.Union, A.Intersect, A.Difference)):
            left = self._check(expr.left, env)
            right = self._check(expr.right, env)
            out = unify(left, right, "set operation")
            if isinstance(out, AnyType):
                return SetType(ANY)
            if not isinstance(out, SetType):
                raise TypeCheckError(f"set operation on non-sets: {left!r}, {right!r}")
            return out

        if isinstance(expr, A.Aggregate):
            element = self._elem(expr.source, env, "aggregate operand")
            if expr.func == "count":
                return INT
            if expr.func in ("sum", "min", "max", "avg"):
                if isinstance(element, AnyType):
                    return FLOAT if expr.func == "avg" else ANY
                if expr.func in ("sum", "avg") and not is_numeric(element):
                    raise TypeCheckError(f"{expr.func} over non-numeric {element!r}")
                if expr.func in ("min", "max") and not is_comparable(element):
                    raise TypeCheckError(f"{expr.func} over non-comparable {element!r}")
                return FLOAT if expr.func == "avg" else element
            raise TypeCheckError(f"unknown aggregate {expr.func!r}")

        if isinstance(expr, A.Materialize):
            element = self._tuple_elem(expr.source, env, "materialize operand")
            if self.schema is None:
                raise TypeCheckError("materialize requires a schema")
            ref_t = element.field(expr.attr)
            obj_t = self.schema.object_type(expr.class_name)
            if isinstance(ref_t, OidType):
                attached: Type = obj_t
            elif isinstance(ref_t, SetType) and isinstance(ref_t.element, (OidType, AnyType)):
                attached = SetType(obj_t)
            else:
                raise TypeCheckError(
                    f"materialize attribute {expr.attr!r} must hold oid(s), got {ref_t!r}"
                )
            if expr.as_attr in element.fields:
                raise TypeCheckError(
                    f"materialize target {expr.as_attr!r} clashes with existing attribute"
                )
            fields = dict(element.fields)
            fields[expr.as_attr] = attached
            return SetType(TupleType(fields))

        raise TypeCheckError(f"no typing rule for {type(expr).__name__}")

    def _check_setcompare(self, expr: A.SetCompare, env: Dict[str, Type]) -> Type:
        left = self._check(expr.left, env)
        right = self._check(expr.right, env)
        op = expr.op
        if op in ("in", "notin"):
            if isinstance(right, AnyType):
                return BOOL
            if not isinstance(right, SetType):
                raise TypeCheckError(f"right operand of ∈ must be a set, got {right!r}")
            unify(left, right.element, "membership")
            return BOOL
        if op in ("ni", "notni"):
            if isinstance(left, AnyType):
                return BOOL
            if not isinstance(left, SetType):
                raise TypeCheckError(f"left operand of ∋ must be a set, got {left!r}")
            unify(right, left.element, "containment")
            return BOOL
        # remaining operators relate two sets
        for t in (left, right):
            if not isinstance(t, (SetType, AnyType)):
                raise TypeCheckError(f"set comparison {op} on non-set {t!r}")
        unify(left, right, f"set comparison {op}")
        return BOOL
