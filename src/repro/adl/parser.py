"""Parser for the ADL pretty syntax — the fragment-shipping surface.

:mod:`repro.adl.pretty` renders ADL expressions in the paper's Section 3
notation.  This module is its inverse: it re-parses that canonical text
back into :class:`repro.adl.ast` nodes, which is what lets the
partition-parallel executor (:mod:`repro.shard`) ship plan fragments to
worker processes **as text** — the same re-parseable-shape trick the
PR-4 plan cache plays with OOSQL text, one layer down.  A worker
receives ``pretty(expr)`` plus shard bindings, re-parses, re-plans
locally, and executes against its shard; no plan trees ever cross the
process boundary.

The grammar is exactly what ``pretty`` emits.  Two deliberate
normalizations (both semantics-preserving, documented here because they
make ``parse_adl`` a *left* inverse up to evaluation, not up to node
identity):

* ``SetCompare("seteq"/"setneq", l, r)`` prints as ``l = r`` / ``l ≠ r``
  and re-parses as :class:`~repro.adl.ast.Compare` — scalar equality is
  defined on all values, including sets, so evaluation agrees;
* a ``Literal`` holding a set/tuple value re-parses as the equivalent
  :class:`~repro.adl.ast.SetExpr` / :class:`~repro.adl.ast.TupleExpr`
  constructor over literal parts.

Name resolution follows :mod:`repro.adl.freevars` scoping exactly: a
bare name is a :class:`~repro.adl.ast.Var` when an enclosing binder
(select/map/join/quantifier) introduced it, an
:class:`~repro.adl.ast.ExtentRef` otherwise.  Closed expressions — the
only ones fragments ship — therefore round-trip without a symbol table.

Known limits (acceptable for fragment shipping, asserted by tests):
string literals must not contain ``"`` (``format_value`` does not escape
them); an ``OuterJoin`` loses its ``right_attrs`` (not printed); and a
complete parenthesized ``(NAME = value)`` with ``NAME`` unbound parses
as a unary tuple constructor, not a comparison of an extent (see
``_Parser._parenthesized`` — incomplete field lists like
``(X = 1 ∧ p)`` backtrack correctly).  The planner never ships any of
these forms.
"""

from __future__ import annotations

import re
from typing import FrozenSet, List, Tuple

from repro.adl import ast as A
from repro.datamodel.errors import ADLSyntaxError
from repro.datamodel.values import Oid

__all__ = ["parse_adl"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<string>"[^"]*")
  | (?P<param>\$[A-Za-z_][A-Za-z0-9_]*)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|!=|[()\[\]{},:;.=<>+\-*/@•∅σαπρμν⊔×⋈⋉▷⟕⊣÷∪∩−∈∉⊂⊆⊇⊃∋∌∧∨¬∃∀⟨⟩→≠])
    """,
    re.VERBOSE,
)

#: binary operators dispatched by :meth:`_Parser._binary` — kept in tiers so
#: conventional precedence falls out even though ``pretty`` always
#: parenthesizes its own binary nodes.
_BOOL_OPS = ("∧", "∨")
_CMP_OPS = ("=", "!=", "<", "<=", ">", ">=")
_SETCMP_SYMBOLS = {
    "∈": "in",
    "∉": "notin",
    "⊂": "subset",
    "⊆": "subseteq",
    "⊇": "supseteq",
    "⊃": "supset",
    "∋": "ni",
    "∌": "notni",
    "≠": "setneq",
}
_ADD_OPS = ("+", "-", "−", "∪")
_MUL_OPS = ("*", "/", "mod", "×", "∩", "÷")
_JOIN_OPS = ("⋈", "⋉", "▷", "⟕", "⊣", "o")

_JOIN_NODE = {"⋈": A.Join, "⋉": A.SemiJoin, "▷": A.AntiJoin}


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int) -> None:
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text!r}@{self.pos}"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ADLSyntaxError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group(), match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token machinery ----------------------------------------------------
    def peek(self, offset: int = 0) -> _Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def next(self) -> _Token:
        token = self.peek()
        if token.kind != "eof":
            self.index += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.next()
        if token.text != text:
            raise ADLSyntaxError(
                f"expected {text!r} but found {token.text or 'end of input'!r} "
                f"at offset {token.pos}"
            )
        return token

    def at(self, text: str) -> bool:
        return self.peek().text == text

    def _fail(self, what: str) -> None:
        token = self.peek()
        raise ADLSyntaxError(
            f"expected {what} but found {token.text or 'end of input'!r} "
            f"at offset {token.pos}"
        )

    # -- grammar -------------------------------------------------------------
    def parse(self) -> A.Expr:
        expr = self.expr(frozenset())
        if self.peek().kind != "eof":
            self._fail("end of input")
        return expr

    def expr(self, bound: FrozenSet[str]) -> A.Expr:
        return self._bool(bound)

    def _bool(self, bound: FrozenSet[str]) -> A.Expr:
        left = self._cmp(bound)
        while self.peek().text in _BOOL_OPS:
            op = self.next().text
            right = self._cmp(bound)
            left = A.And(left, right) if op == "∧" else A.Or(left, right)
        return left

    def _cmp(self, bound: FrozenSet[str]) -> A.Expr:
        left = self._add(bound)
        text = self.peek().text
        if text in _CMP_OPS:
            self.next()
            if text == "=" and self.at("∅"):
                self.next()
                return A.IsEmpty(left)
            right = self._add(bound)
            if text == "=" and right == A.SetExpr(()):
                return A.IsEmpty(left)
            return A.Compare(text, left, right)
        if text in _SETCMP_SYMBOLS:
            self.next()
            right = self._add(bound)
            return A.SetCompare(_SETCMP_SYMBOLS[text], left, right)
        return left

    def _add(self, bound: FrozenSet[str]) -> A.Expr:
        left = self._mul(bound)
        while self.peek().text in _ADD_OPS:
            op = self.next().text
            right = self._mul(bound)
            if op == "∪":
                left = A.Union(left, right)
            elif op == "−":
                left = A.Difference(left, right)
            else:
                left = A.Arith(op, left, right)
        return left

    def _mul(self, bound: FrozenSet[str]) -> A.Expr:
        left = self._join(bound)
        while self.peek().text in _MUL_OPS:
            op = self.next().text
            right = self._join(bound)
            if op == "×":
                left = A.CartProd(left, right)
            elif op == "∩":
                left = A.Intersect(left, right)
            elif op == "÷":
                left = A.Division(left, right)
            else:
                left = A.Arith(op, left, right)
        return left

    def _join(self, bound: FrozenSet[str]) -> A.Expr:
        left = self._postfix(bound)
        while True:
            text = self.peek().text
            if text == "o" and self.peek().kind == "name":
                self.next()
                left = A.Concat(left, self._postfix(bound))
                continue
            if text in ("⋈", "⋉", "▷", "⟕"):
                self.next()
                lvar, rvar, pred = self._join_head(bound)
                right = self._postfix(bound)
                if text == "⟕":
                    # right_attrs are not part of the printed form; see the
                    # module docstring — the planner never ships outerjoins
                    left = A.OuterJoin(left, right, lvar, rvar, pred, ())
                else:
                    left = _JOIN_NODE[text](left, right, lvar, rvar, pred)
                continue
            if text == "⊣":
                self.next()
                self.expect("⟨")
                lvar = self._name("join variable")
                self.expect(",")
                rvar = self._name("join variable")
                self.expect(":")
                inner = bound | {lvar, rvar}
                pred = self.expr(inner)
                self.expect(";")
                result = self.expr(inner)
                self.expect(";")
                as_attr = self._name("nestjoin attribute")
                self.expect("⟩")
                right = self._postfix(bound)
                left = A.NestJoin(left, right, lvar, rvar, pred, as_attr, result)
                continue
            return left

    def _join_head(self, bound: FrozenSet[str]) -> Tuple[str, str, A.Expr]:
        self.expect("⟨")
        lvar = self._name("join variable")
        self.expect(",")
        rvar = self._name("join variable")
        self.expect(":")
        pred = self.expr(bound | {lvar, rvar})
        self.expect("⟩")
        return lvar, rvar, pred

    def _postfix(self, bound: FrozenSet[str]) -> A.Expr:
        expr = self._primary(bound)
        while True:
            if self.at("."):
                self.next()
                expr = A.AttrAccess(expr, self._name("attribute"))
            elif self.at("["):
                self.next()
                attrs = self._name_list("]")
                expr = A.TupleSubscript(expr, attrs)
            elif self.at("except"):
                self.next()
                self.expect("(")
                expr = A.TupleUpdate(expr, self._fields(bound))
            else:
                return expr

    # -- primaries -----------------------------------------------------------
    def _primary(self, bound: FrozenSet[str]) -> A.Expr:
        token = self.peek()
        text = token.text
        if token.kind == "number":
            self.next()
            return A.Literal(self._number(text))
        if token.kind == "string":
            self.next()
            return A.Literal(text[1:-1])
        if token.kind == "param":
            self.next()
            return A.Param(text[1:])
        if text == "-":
            self.next()
            operand = self._postfix(bound)
            if isinstance(operand, A.Literal) and isinstance(operand.value, (int, float)):
                return A.Literal(-operand.value)
            return A.Neg(operand)
        if text == "@":
            return A.Literal(self._oid())
        if text == "∅":
            self.next()
            return A.Literal(frozenset())
        if text == "{":
            self.next()
            elements: List[A.Expr] = []
            if not self.at("}"):
                elements.append(self.expr(bound))
                while self.at(","):
                    self.next()
                    elements.append(self.expr(bound))
            self.expect("}")
            return A.SetExpr(tuple(elements))
        if text == "(":
            return self._parenthesized(bound)
        if text == "¬":
            self.next()
            self.expect("(")
            operand = self.expr(bound)
            self.expect(")")
            return A.Not(operand)
        if text in ("∃", "∀"):
            self.next()
            var = self._name("quantifier variable")
            self.expect("∈")
            source = self._postfix(bound)
            self.expect("•")
            pred = self.expr(bound | {var})
            node = A.Exists if text == "∃" else A.Forall
            return node(var, source, pred)
        if text in ("σ", "α"):
            self.next()
            self.expect("[")
            var = self._name("iterator variable")
            self.expect(":")
            body = self.expr(bound | {var})
            self.expect("]")
            self.expect("(")
            source = self.expr(bound)
            self.expect(")")
            return A.Select(var, body, source) if text == "σ" else A.Map(var, body, source)
        if text == "π":
            self.next()
            self._underscore()
            self.expect("{")
            attrs = self._name_list("}")
            return A.Project(self._parens_source(bound), attrs)
        if text == "ρ":
            self.next()
            self._underscore()
            self.expect("{")
            renames: List[Tuple[str, str]] = []
            while True:
                old = self._name("attribute")
                self.expect("→")
                renames.append((old, self._name("attribute")))
                if not self.at(","):
                    break
                self.next()
            self.expect("}")
            return A.Rename(self._parens_source(bound), tuple(renames))
        if text == "μ":
            self.next()
            attr = self._trailing_name()
            return A.Unnest(self._parens_source(bound), attr)
        if text == "ν":
            self.next()
            self._underscore()
            self.expect("{")
            attrs = [self._name("attribute")]
            while self.at(","):
                self.next()
                attrs.append(self._name("attribute"))
            self.expect("→")
            as_attr = self._name("attribute")
            self.expect("}")
            return A.Nest(self._parens_source(bound), tuple(attrs), as_attr)
        if text == "⊔":
            self.next()
            return A.Flatten(self._parens_source(bound))
        if text == "mat_":
            # the name token swallows the separator: ``mat_{a→b : C}(e)``
            self.next()
            self.expect("{")
            attr = self._name("attribute")
            self.expect("→")
            as_attr = self._name("attribute")
            self.expect(":")
            class_name = self._name("class name")
            self.expect("}")
            return A.Materialize(self._parens_source(bound), attr, as_attr, class_name)
        if text == "stitch" and text not in bound and self.peek(1).text == "[":
            # ``stitch[x,y : p ; f ; a ; {k1, k2}](LEFT, RIGHT)``
            self.next()
            self.next()
            lvar = self._name("join variable")
            self.expect(",")
            rvar = self._name("join variable")
            self.expect(":")
            inner = bound | {lvar, rvar}
            pred = self.expr(inner)
            self.expect(";")
            result = self.expr(inner)
            self.expect(";")
            as_attr = self._name("stitch attribute")
            self.expect(";")
            self.expect("{")
            key_attrs = self._name_list("}")
            self.expect("]")
            self.expect("(")
            left = self.expr(bound)
            self.expect(",")
            right = self.expr(bound)
            self.expect(")")
            return A.Stitch(left, right, lvar, rvar, pred, as_attr, result, key_attrs)
        if text == "disjoint" and self.peek(1).text == "(":
            self.next()
            self.next()
            left = self.expr(bound)
            self.expect(",")
            right = self.expr(bound)
            self.expect(")")
            return A.SetCompare("disjoint", left, right)
        if token.kind == "name":
            if text == "true":
                self.next()
                return A.Literal(True)
            if text == "false":
                self.next()
                return A.Literal(False)
            if text == "null":
                self.next()
                return A.Literal(None)
            if (
                text in A.AGGREGATE_FUNCS
                and text not in bound
                and self.peek(1).text == "("
            ):
                self.next()
                self.next()
                source = self.expr(bound)
                self.expect(")")
                return A.Aggregate(text, source)
            self.next()
            return A.Var(text) if text in bound else A.ExtentRef(text)
        self._fail("an expression")
        raise AssertionError("unreachable")

    def _parenthesized(self, bound: FrozenSet[str]) -> A.Expr:
        """``(`` ... ``)`` — a tuple constructor when the content parses
        as a ``name = value, ...`` field list over *unbound* names,
        otherwise a (possibly binary) parenthesized expression.

        The field attempt backtracks: ``(X = 1 ∧ true)`` starts like a
        field list but cannot finish as one (field values are
        comparison-level — any tuple field holding a boolean/binary
        expression is self-parenthesized by ``pretty``), so it re-parses
        as the comparison it is.  The one residual ambiguity is a
        *complete* single-field form like ``(X = 1)`` with ``X`` unbound,
        which parses as the (far more common) unary tuple — planner
        fragments never compare extents, so no shipped fragment hits it.
        """
        self.expect("(")
        head = self.peek()
        if (
            head.kind == "name"
            and head.text not in bound
            and self.peek(1).text == "="
            and head.text not in ("true", "false", "null")
        ):
            saved = self.index
            try:
                return A.TupleExpr(self._fields(bound))
            except ADLSyntaxError:
                self.index = saved  # not a field list after all
        expr = self.expr(bound)
        self.expect(")")
        return expr

    def _fields(self, bound: FrozenSet[str]) -> Tuple[Tuple[str, A.Expr], ...]:
        """``name = value, ...`` up to and including the closing ``)``.

        Values parse at comparison level (no top-level ``∧``/``∨``):
        ``pretty`` self-parenthesizes boolean and binary nodes, so a
        legitimate field value never needs more — and stopping there is
        what lets :meth:`_parenthesized` detect that ``(X = 1 ∧ …)`` is
        a comparison, not a field list."""
        fields: List[Tuple[str, A.Expr]] = []
        while True:
            name = self._name("field name")
            self.expect("=")
            fields.append((name, self._cmp(bound)))
            if self.at(","):
                self.next()
                continue
            self.expect(")")
            return tuple(fields)

    # -- lexical helpers -----------------------------------------------------
    def _name(self, what: str) -> str:
        token = self.next()
        if token.kind != "name":
            raise ADLSyntaxError(
                f"expected {what} but found {token.text or 'end of input'!r} "
                f"at offset {token.pos}"
            )
        return token.text

    def _name_list(self, closer: str) -> Tuple[str, ...]:
        names = [self._name("attribute")]
        while self.at(","):
            self.next()
            names.append(self._name("attribute"))
        self.expect(closer)
        return tuple(names)

    def _underscore(self) -> None:
        token = self.next()
        if token.text != "_":
            raise ADLSyntaxError(f"expected '_' at offset {token.pos}")

    def _trailing_name(self) -> str:
        """The ``_attr`` suffix of ``μ_attr`` — one name token whose leading
        underscore is the separator."""
        token = self.next()
        if token.kind != "name" or not token.text.startswith("_") or len(token.text) < 2:
            raise ADLSyntaxError(
                f"expected '_attribute' but found {token.text!r} at offset {token.pos}"
            )
        return token.text[1:]

    def _parens_source(self, bound: FrozenSet[str]) -> A.Expr:
        self.expect("(")
        source = self.expr(bound)
        self.expect(")")
        return source

    def _number(self, text: str):
        if "." in text or "e" in text or "E" in text:
            return float(text)
        return int(text)

    def _oid(self) -> Oid:
        self.expect("@")
        class_name = self._name("class name")
        self.expect(":")
        token = self.next()
        if token.kind != "number" or not token.text.isdigit():
            raise ADLSyntaxError(f"expected oid number at offset {token.pos}")
        return Oid(class_name, int(token.text))


def parse_adl(text: str) -> A.Expr:
    """Parse canonical ADL pretty text back into an expression tree.

    Inverse of :func:`repro.adl.pretty.pretty` up to the documented
    normalizations; raises :class:`~repro.datamodel.errors.ADLSyntaxError`
    on malformed input.
    """
    return _Parser(text).parse()
