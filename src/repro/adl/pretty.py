"""Pretty printer: render ADL expressions in the paper's surface notation.

The output mirrors Section 3's notation as closely as plain Unicode allows::

    σ[x : p](X)                selection
    α[x : f](X)                map
    X ⋈⟨x,y : p⟩ Y            join          (⋉ semijoin, ▷ antijoin)
    X ⊣⟨x,y : p ; f ; a⟩ Y    nestjoin
    μ_a(X)   ν_{a,b→c}(X)     unnest / nest
    ∃y ∈ Y • p                quantifiers

Rewrite traces print through this module, so the derivations in the tests
and benchmark output read like the paper's own rewriting examples.
"""

from __future__ import annotations

from repro.adl import ast as A
from repro.datamodel.values import format_value

_SET_CMP_SYMBOL = {
    "in": "∈",
    "notin": "∉",
    "subset": "⊂",
    "subseteq": "⊆",
    "seteq": "=",
    "setneq": "≠",
    "supseteq": "⊇",
    "supset": "⊃",
    "ni": "∋",
    "notni": "∌",
    "disjoint": "∩∅",
}

_JOIN_SYMBOL = {
    A.Join: "⋈",
    A.SemiJoin: "⋉",
    A.AntiJoin: "▷",
    A.OuterJoin: "⟕",
}


def pretty(expr: A.Expr) -> str:
    """Single-line rendering of an ADL expression."""
    return _p(expr)


def _p(expr: A.Expr) -> str:
    if isinstance(expr, A.Literal):
        return format_value(expr.value)
    if isinstance(expr, A.Var):
        return expr.name
    if isinstance(expr, A.ExtentRef):
        return expr.name
    if isinstance(expr, A.Param):
        return f"${expr.name}"
    if isinstance(expr, A.AttrAccess):
        return f"{_p_atomic(expr.base)}.{expr.attr}"
    if isinstance(expr, A.TupleExpr):
        inner = ", ".join(f"{n} = {_p(e)}" for n, e in expr.fields)
        return f"({inner})"
    if isinstance(expr, A.SetExpr):
        return "{" + ", ".join(_p(e) for e in expr.elements) + "}"
    if isinstance(expr, A.TupleSubscript):
        return f"{_p_atomic(expr.base)}[{', '.join(expr.attrs)}]"
    if isinstance(expr, A.TupleUpdate):
        updates = ", ".join(f"{n} = {_p(e)}" for n, e in expr.updates)
        return f"{_p_atomic(expr.base)} except ({updates})"
    if isinstance(expr, A.Concat):
        return f"{_p_atomic(expr.left)} o {_p_atomic(expr.right)}"
    if isinstance(expr, A.Arith):
        return f"({_p(expr.left)} {expr.op} {_p(expr.right)})"
    if isinstance(expr, A.Neg):
        return f"(-{_p(expr.operand)})"
    if isinstance(expr, A.Compare):
        return f"{_p(expr.left)} {expr.op} {_p(expr.right)}"
    if isinstance(expr, A.SetCompare):
        if expr.op == "disjoint":
            return f"disjoint({_p(expr.left)}, {_p(expr.right)})"
        return f"{_p(expr.left)} {_SET_CMP_SYMBOL[expr.op]} {_p(expr.right)}"
    if isinstance(expr, A.And):
        return f"({_p(expr.left)} ∧ {_p(expr.right)})"
    if isinstance(expr, A.Or):
        return f"({_p(expr.left)} ∨ {_p(expr.right)})"
    if isinstance(expr, A.Not):
        return f"¬({_p(expr.operand)})"
    if isinstance(expr, A.IsEmpty):
        return f"{_p_atomic(expr.operand)} = ∅"
    if isinstance(expr, A.Exists):
        return f"∃{expr.var} ∈ {_p(expr.source)} • {_p(expr.pred)}"
    if isinstance(expr, A.Forall):
        return f"∀{expr.var} ∈ {_p(expr.source)} • {_p(expr.pred)}"
    if isinstance(expr, A.Map):
        return f"α[{expr.var} : {_p(expr.body)}]({_p(expr.source)})"
    if isinstance(expr, A.Select):
        return f"σ[{expr.var} : {_p(expr.pred)}]({_p(expr.source)})"
    if isinstance(expr, A.Project):
        return f"π_{{{', '.join(expr.attrs)}}}({_p(expr.source)})"
    if isinstance(expr, A.Rename):
        renames = ", ".join(f"{old}→{new}" for old, new in expr.renames)
        return f"ρ_{{{renames}}}({_p(expr.source)})"
    if isinstance(expr, A.Flatten):
        return f"⊔({_p(expr.source)})"
    if isinstance(expr, A.Unnest):
        return f"μ_{expr.attr}({_p(expr.source)})"
    if isinstance(expr, A.Nest):
        return f"ν_{{{', '.join(expr.attrs)}→{expr.as_attr}}}({_p(expr.source)})"
    if isinstance(expr, A.CartProd):
        return f"({_p(expr.left)} × {_p(expr.right)})"
    if isinstance(expr, (A.Join, A.SemiJoin, A.AntiJoin)):
        symbol = _JOIN_SYMBOL[type(expr)]
        return (
            f"({_p(expr.left)} {symbol}⟨{expr.lvar},{expr.rvar} : {_p(expr.pred)}⟩ "
            f"{_p(expr.right)})"
        )
    if isinstance(expr, A.OuterJoin):
        return (
            f"({_p(expr.left)} ⟕⟨{expr.lvar},{expr.rvar} : {_p(expr.pred)}⟩ "
            f"{_p(expr.right)})"
        )
    if isinstance(expr, A.NestJoin):
        result = _p(expr.result)
        return (
            f"({_p(expr.left)} ⊣⟨{expr.lvar},{expr.rvar} : {_p(expr.pred)} ; "
            f"{result} ; {expr.as_attr}⟩ {_p(expr.right)})"
        )
    if isinstance(expr, A.Stitch):
        keys = ", ".join(expr.key_attrs)
        return (
            f"stitch[{expr.lvar},{expr.rvar} : {_p(expr.pred)} ; "
            f"{_p(expr.result)} ; {expr.as_attr} ; {{{keys}}}]"
            f"({_p(expr.left)}, {_p(expr.right)})"
        )
    if isinstance(expr, A.Division):
        return f"({_p(expr.left)} ÷ {_p(expr.right)})"
    if isinstance(expr, A.Union):
        return f"({_p(expr.left)} ∪ {_p(expr.right)})"
    if isinstance(expr, A.Intersect):
        return f"({_p(expr.left)} ∩ {_p(expr.right)})"
    if isinstance(expr, A.Difference):
        return f"({_p(expr.left)} − {_p(expr.right)})"
    if isinstance(expr, A.Aggregate):
        return f"{expr.func}({_p(expr.source)})"
    if isinstance(expr, A.Materialize):
        return f"mat_{{{expr.attr}→{expr.as_attr} : {expr.class_name}}}({_p(expr.source)})"
    raise TypeError(f"no pretty form for {type(expr).__name__}")


def _p_atomic(expr: A.Expr) -> str:
    """Parenthesize operands that would otherwise read ambiguously."""
    text = _p(expr)
    if isinstance(
        expr,
        (A.Literal, A.Var, A.ExtentRef, A.Param, A.AttrAccess, A.TupleExpr, A.SetExpr,
         A.TupleSubscript, A.Aggregate, A.Map, A.Select, A.Project, A.Rename,
         A.Flatten, A.Unnest, A.Nest, A.Materialize, A.Stitch),
    ):
        return text
    return f"({text})"


def pretty_tree(expr: A.Expr, indent: str = "") -> str:
    """Multi-line, indented rendering — useful for large plans."""
    label = type(expr).__name__
    details = []
    for name in ("var", "lvar", "rvar", "attr", "as_attr", "attrs", "op", "func", "name", "class_name"):
        if hasattr(expr, name):
            value = getattr(expr, name)
            if isinstance(value, tuple):
                value = ",".join(map(str, value))
            details.append(f"{name}={value}")
    if isinstance(expr, A.Literal):
        details.append(format_value(expr.value))
    head = f"{indent}{label}" + (f" [{' '.join(details)}]" if details else "")
    lines = [head]
    for child in expr.child_exprs():
        lines.append(pretty_tree(child, indent + "  "))
    return "\n".join(lines)
