"""Compilation of ADL expressions into Python closures.

The reference :class:`~repro.engine.interpreter.Interpreter` re-walks the
AST for every tuple an operator touches: one dictionary dispatch, one
method call, and (at the public entry point) one environment copy *per
node per tuple*.  That tuple-oriented overhead is exactly what the paper
blames nested-loop processing for.  The physical operators therefore
compile their parameter expressions — predicates, hash keys, nestjoin
result functions — **once per operator** into plain Python closures
``fn(env) -> value`` and call those in their inner loops.

Design rules:

* **Semantics**: a compiled closure must be observationally identical to
  ``Interpreter._eval`` on the same expression — same values, same error
  types and messages, same short-circuiting.  The test suite checks this
  oracle-equality over a battery of expression forms.
* **Counters**: compiled closures maintain the same :class:`Stats`
  counters the interpreter maintains (``comparisons``, ``oid_derefs``,
  ``tuples_visited``/``predicate_evals`` inside quantifiers), so work
  accounting stays comparable across engines.  Consequently **constant
  folding is restricted to counter-free node types** — a folded ``Compare``
  would silently stop counting.
* **Fallback**: node types the compiler does not cover (the set iterators
  ``Map``/``Select``/joins, restructuring, ``Materialize``...) compile
  into a closure that delegates the whole subtree to the interpreter, so
  coverage gaps can never change behaviour.  The per-compiler census
  (:attr:`Compiler.fallback_nodes`) makes the gap measurable.

Binding discipline: the interpreter copies the environment at every
binder; compiled quantifiers instead save and restore the single bound
name around the loop (``try/finally``, so a raising predicate cannot leak
a binding into the caller's environment).

Vectorized batch kernels (PR 8)
===============================

:meth:`Compiler.compile_batch` compiles a *covered* expression form into
a **batch kernel** ``kernel(rows) -> list`` that maps a whole columnar
chunk in tight list-level loops instead of one closure call per tuple.
Coverage is the pure predicate :func:`vector_covered` — literals,
parameters, the batch variable, attribute access, comparisons, boolean
connectives and arithmetic over those; anything else (set iterators,
quantifiers, tuple constructors...) is *uncovered* and the caller falls
back to applying the tuple-wise closure per batch element (counted in
``stats.vector_fallbacks`` — never silent).

The fallback discipline extends PR 1's: kernels must be oracle-equal to
the tuple-wise closures **by construction**.  Counter increments inside
a kernel land in a private scratch :class:`Stats` that is folded into
the real bundle only when the whole batch maps cleanly; if *anything*
raises mid-column (a type error, a missing attribute, an oid that needs
dereferencing through a failing store) the scratch is discarded and the
batch re-runs element-wise through the tuple closure, so the error — its
type, message and the counter state it surfaces under — is exactly the
tuple engine's.  Short-circuiting ``and``/``or`` evaluate their right
operand only over the rows the left operand selected, preserving both
values and per-conjunct counter totals.
"""

from __future__ import annotations

import operator as _op
from itertools import compress
from typing import Callable, Dict, List, Optional

from repro.adl import ast as A
from repro.datamodel.errors import EvaluationError, UnboundParameterError, UnboundVariableError
from repro.datamodel.values import Oid, Value, VTuple, concat
from repro.engine.stats import Stats

#: A compiled expression: evaluate against a mutable environment dict.
CompiledFn = Callable[[Dict[str, Value]], Value]

#: A vectorized batch kernel: map a list of rows to a list of values.
BatchKernel = Callable[[List[Value]], List[Value]]

_MISSING = object()

#: ordered-comparison operators as callables for the batch kernels
_ORDERED_OPS = {"<": _op.lt, "<=": _op.le, ">": _op.gt, ">=": _op.ge}

#: operator to use when a fused compare finds its literal on the *left*:
#: ``k < x.a`` runs the loop as ``x.a > k``
_MIRRORED_OPS = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

_ARITH_OPS = {"+": _op.add, "-": _op.sub, "*": _op.mul, "/": _op.truediv, "%": _op.mod}

#: value-class sets the ordered comparison accepts (bool is excluded by
#: construction: ``type(True) is bool``, never ``int``)
_NUMERIC_KINDS = frozenset({int, float})
_STR_KINDS = frozenset({str})

#: reflected dunder for a fused ordered compare against a literal ``k``:
#: ``v <op> k`` computed as the bound method ``k.<refl>(v)`` so homogeneous
#: columns compare in one C-level ``map`` with no per-row dispatch
_REFLECTED_OPS = {"<": "__gt__", "<=": "__ge__", ">": "__lt__", ">=": "__le__"}


def _static_kind(expr: A.Expr) -> Optional[str]:
    """Compile-time value-class guarantee for a covered subexpression:
    ``"num"`` / ``"bool"`` / ``"str"``, or ``None`` when unknown.

    The guarantee is *conditional on clean return*: an ``Arith``/``Neg``
    kernel validates its operands numeric (bailing otherwise) and numeric
    arithmetic closes over int/float, so its output column is numeric by
    construction; ``Compare``/``And``/``Or``/``Not`` likewise emit real
    bools.  Consumers use this to elide their per-batch ``set(map(type,
    col))`` validation passes — the dominant non-compute cost on long
    expression chains."""
    t = type(expr)
    if t is A.Arith or t is A.Neg:
        return "num"
    if t is A.Compare or t is A.And or t is A.Or or t is A.Not:
        return "bool"
    if t is A.Literal:
        v = expr.value
        if type(v) is bool:
            return "bool"
        if type(v) is int or type(v) is float:
            return "num"
        if type(v) is str:
            return "str"
    return None


def _field_column(attr: str):
    """C-speed extraction of ``row._fields[attr]`` over a rows list: two
    chained ``map`` calls, no per-row Python frame.  Any irregular row
    (non-tuple, missing attribute) raises out of ``list`` and the caller
    bails the batch."""
    getter = _op.itemgetter(attr)
    fields = _op.attrgetter("_fields")

    def column(rows: List[Value]) -> List[Value]:
        return list(map(getter, map(fields, rows)))

    return column


def _fold_fields(scratch: Stats, stats: Stats):
    """Closure that folds a kernel's scratch counters into the real bundle.

    Covered node types only ever touch ``comparisons`` and ``oid_derefs``
    (``predicate_evals`` is bulk-counted by the predicate wrapper itself),
    so the fold is two adds, not a loop over every Stats field.
    """

    def fold() -> None:
        if scratch.comparisons:
            stats.comparisons += scratch.comparisons
        if scratch.oid_derefs:
            stats.oid_derefs += scratch.oid_derefs

    return fold


class _VectorBail(Exception):
    """Internal: a batch kernel hit something it cannot map column-wise
    (a type anomaly, an error mid-column).  Callers discard the scratch
    counters and re-run the batch element-wise through the tuple-wise
    closure, which reproduces the exact tuple-engine semantics."""


#: AST node types the vectorizing batch compiler covers natively; every
#: other type makes the whole kernel fall back to the tuple-wise closure
#: (see :func:`vector_covered`).  Exposed for tests and reporting.
VECTOR_NODE_TYPES = frozenset(
    {
        A.Literal,
        A.Var,
        A.Param,
        A.AttrAccess,
        A.Compare,
        A.And,
        A.Or,
        A.Not,
        A.Arith,
        A.Neg,
    }
)


def vector_covered(expr: A.Expr, var: str) -> bool:
    """Pure coverage predicate: can ``expr`` compile into a batch kernel
    over rows bound to ``var``?

    True iff every node in the tree is a :data:`VECTOR_NODE_TYPES` member
    and the only variable referenced is ``var`` itself (a reference to an
    outer binding cannot be columnized — the batch carries one binder).
    This is the *exact* condition under which ``compile_batch`` vectorizes;
    the property tests assert fallback triggers precisely on its negation.
    """
    t = type(expr)
    if t not in VECTOR_NODE_TYPES:
        return False
    if t is A.Var:
        return expr.name == var
    if t is A.Literal or t is A.Param:
        return True
    if t is A.AttrAccess:
        return vector_covered(expr.base, var)
    if t is A.Not or t is A.Neg:
        return vector_covered(expr.operand, var)
    # Compare / And / Or / Arith are all left/right binary nodes
    return vector_covered(expr.left, var) and vector_covered(expr.right, var)

#: Node types that are pure and counter-free: safe to evaluate at compile
#: time when all their inputs are constants.  ``Compare``/``SetCompare``
#: (they count comparisons) and anything that may dereference an oid
#: (``AttrAccess``, ``TupleSubscript``, ``TupleUpdate`` — they count
#: ``oid_derefs`` and read database state) are deliberately excluded.
_FOLDABLE = (
    A.Arith,
    A.Neg,
    A.And,
    A.Or,
    A.Not,
    A.IsEmpty,
    A.TupleExpr,
    A.SetExpr,
    A.Concat,
    A.Union,
    A.Intersect,
    A.Difference,
    A.Aggregate,
)


class Compiler:
    """Compiles ADL expressions against one database + stats bundle.

    One instance per :class:`~repro.engine.plan.ExecRuntime`; closures
    capture ``db``/``stats`` directly so the hot path carries no runtime
    lookups.  ``interpreter`` supplies the fallback evaluation.
    """

    def __init__(self, db, stats: Stats, interpreter, params=None) -> None:
        self.db = db
        self.stats = stats
        self.interpreter = interpreter
        #: prepared-statement parameter bindings for this runtime's
        #: executions; ``Param`` closures read it at call time.  Kept by
        #: reference (not copied) so the runtime that owns the mapping can
        #: rebind between runs without recompiling.
        self.params: Dict[str, Value] = params if params is not None else {}
        #: census: how many AST nodes compiled natively / fell back / folded
        self.compiled_nodes = 0
        self.fallback_nodes = 0
        self.folded_nodes = 0
        #: one-slot per-attribute column cache shared by every batch kernel
        #: this compiler builds: ``attr -> (rows, column)``, valid only
        #: while the cached ``rows`` IS the list being mapped (checked by
        #: identity).  A predicate like ``x.a*3 - x.a < x.a + 7`` extracts
        #: the ``a`` column once per batch instead of once per reference.
        #: Single-threaded by design — one compiler per ExecRuntime, one
        #: runtime per run.
        self._col_cache: Dict[str, tuple] = {}

    # -- public API ---------------------------------------------------------
    def compile(self, expr: A.Expr) -> CompiledFn:
        fn, _ = self._compile(expr)
        return fn

    def compile_pred(self, expr: A.Expr) -> Callable[[Dict[str, Value]], bool]:
        """Compile a predicate: counts ``predicate_evals`` and enforces the
        boolean result exactly like ``ExecRuntime.eval_pred``."""
        fn, _ = self._compile(expr)
        stats = self.stats

        def pred(env: Dict[str, Value]) -> bool:
            stats.predicate_evals += 1
            value = fn(env)
            if not isinstance(value, bool):
                raise EvaluationError(f"predicate produced non-boolean {value!r}")
            return value

        return pred

    # -- vectorized batch kernels (PR 8) ------------------------------------
    def compile_batch(self, expr: A.Expr, var: str) -> Optional[BatchKernel]:
        """A batch kernel for ``expr`` over rows bound to ``var``, or
        ``None`` when the form is not :func:`vector_covered` (the caller
        applies the tuple-wise closure per element and counts the
        fallback).

        The kernel is oracle-equal to the tuple closure by construction:
        counters accrue in a scratch bundle folded in only on clean
        success; any mid-column anomaly re-runs the batch element-wise
        (see the module docstring).
        """
        if not vector_covered(expr, var):
            return None
        scratch = Stats()
        col_fn = self._vc(expr, var, scratch)
        row_fn = self.compile(expr)
        stats = self.stats
        fold = _fold_fields(scratch, stats)

        def kernel(rows: List[Value]) -> List[Value]:
            scratch.reset()
            try:
                out = col_fn(rows)
            except Exception:
                # discard the scratch, re-run element-wise: values, errors
                # and counters all become exactly the tuple engine's
                stats.vector_fallbacks += 1
                env: Dict[str, Value] = {}
                out = []
                for row in rows:
                    env[var] = row
                    out.append(row_fn(env))
                return out
            fold()
            return out

        return kernel

    def compile_batch_pred(self, expr: A.Expr, var: str) -> Optional[BatchKernel]:
        """Predicate variant of :meth:`compile_batch`: bulk-counts one
        ``predicate_evals`` per row and enforces boolean results, exactly
        like :meth:`compile_pred` does per tuple."""
        if not vector_covered(expr, var):
            return None
        scratch = Stats()
        col_fn = self._vc(expr, var, scratch)
        row_pred = self.compile_pred(expr)
        stats = self.stats
        fold = _fold_fields(scratch, stats)

        # Compare/And/Or/Not kernels (and bool literals) validate their
        # operands and emit real bools by construction — only the other
        # roots need the per-batch result-type pass
        check_bool = _static_kind(expr) != "bool"

        def pred_kernel(rows: List[Value]) -> List[Value]:
            scratch.reset()
            try:
                out = col_fn(rows)
                if check_bool and set(map(type, out)) - {bool}:
                    raise _VectorBail
            except Exception:
                # discard the scratch, re-run element-wise: the non-boolean
                # (or whatever else raised) surfaces with the tuple engine's
                # error and counter state
                stats.vector_fallbacks += 1
                env: Dict[str, Value] = {}
                replay = []
                for row in rows:
                    env[var] = row
                    replay.append(row_pred(env))
                return replay
            fold()
            stats.predicate_evals += len(rows)
            return out

        return pred_kernel

    def _vc(self, expr: A.Expr, var: str, stats: Stats):
        """Column compiler: ``expr`` (vector-covered) → ``fn(rows) -> list``.

        Counters land in ``stats`` (the kernel's scratch bundle).  On any
        anomaly the column raises — :class:`_VectorBail` for conditions the
        tuple engine would report with its own error, or the underlying
        exception — and the kernel wrapper re-runs element-wise.
        """
        t = type(expr)
        if t is A.Literal:
            value = expr.value
            return lambda rows: [value] * len(rows)
        if t is A.Var:
            return lambda rows: rows
        if t is A.Param:
            params = self.params
            name = expr.name

            def fn(rows):
                try:
                    value = params[name]
                except KeyError:
                    raise UnboundParameterError(name) from None
                return [value] * len(rows)

            return fn
        if t is A.AttrAccess:
            return self._vc_attr(expr, var, stats)
        if t is A.Compare:
            return self._vc_compare(expr, var, stats)
        if t is A.And or t is A.Or:
            return self._vc_bool(expr, var, stats, t is A.And)
        if t is A.Not:
            operand_fn = self._vc(expr.operand, var, stats)
            check = _static_kind(expr.operand) != "bool"

            def fn(rows):
                col = operand_fn(rows)
                if check and set(map(type, col)) - {bool}:
                    raise _VectorBail
                return list(map(_op.not_, col))

            return fn
        if t is A.Neg:
            operand_fn = self._vc(expr.operand, var, stats)
            check = _static_kind(expr.operand) != "num"

            def fn(rows):
                col = operand_fn(rows)
                if check and set(map(type, col)) - {int, float}:
                    raise _VectorBail
                return list(map(_op.neg, col))

            return fn
        if t is A.Arith:
            return self._vc_arith(expr, var, stats)
        raise AssertionError(f"not vector-covered: {expr!r}")  # pragma: no cover

    def _vc_attr(self, expr: A.AttrAccess, var: str, stats: Stats):
        attr = expr.attr
        db = self.db
        if type(expr.base) is A.Var and expr.base.name == var:
            # the dominant ``x.a`` shape: read the slot dict directly at
            # C speed; any irregular row (oid to deref, missing attribute,
            # non-tuple) bails the batch to the exact tuple-engine path
            return self._vc_column(attr)
        base_fn = self._vc(expr.base, var, stats)

        def fn(rows):
            col = base_fn(rows)
            out = []
            append = out.append
            derefs = 0
            for base in col:
                if isinstance(base, VTuple):
                    append(base._fields[attr] if attr in base._fields else _MISSING)
                elif isinstance(base, Oid):
                    derefs += 1
                    deref = db.deref(base)
                    if not isinstance(deref, VTuple):
                        raise _VectorBail
                    append(deref._fields[attr] if attr in deref._fields else _MISSING)
                else:
                    raise _VectorBail
            if _MISSING in out:
                raise _VectorBail
            if derefs:
                stats.oid_derefs += derefs
            return out

        return fn

    def _vc_column(self, attr: str):
        """Cached ``x.attr`` column extraction (see ``_col_cache``): every
        reference to the same attribute within one kernel call — and every
        kernel mapping the same batch — shares one extraction pass.
        Consumers never mutate returned columns, so sharing is safe."""
        column = _field_column(attr)
        cache = self._col_cache

        def fn(rows):
            hit = cache.get(attr)
            if hit is not None and hit[0] is rows:
                return hit[1]
            try:
                col = column(rows)
            except Exception:
                raise _VectorBail from None
            cache[attr] = (rows, col)
            return col

        return fn

    def _vc_compare(self, expr: A.Compare, var: str, stats: Stats):
        fused = self._vc_fused_compare(expr, var, stats)
        if fused is not None:
            return fused
        op = expr.op
        left_fn = self._vc(expr.left, var, stats)
        right_fn = self._vc(expr.right, var, stats)
        if op == "=" or op == "!=":
            ne = op == "!="

            def fn(rows):
                l = left_fn(rows)
                r = right_fn(rows)
                stats.comparisons += len(rows)
                if ne:
                    return [a != b for a, b in zip(l, r)]
                return [a == b for a, b in zip(l, r)]

            return fn
        cmp = _ORDERED_OPS[op]
        lkind = _static_kind(expr.left)
        rkind = _static_kind(expr.right)
        if lkind == "num" and rkind == "num":
            # both operands numeric by construction — compare is one map
            def fn(rows):
                l = left_fn(rows)
                r = right_fn(rows)
                stats.comparisons += len(rows)
                return list(map(cmp, l, r))

            return fn
        if lkind == "num" or rkind == "num":
            # one side is known numeric, so the str/str case is impossible:
            # only the unknown side needs the class pass
            known_left = lkind == "num"

            def fn(rows):
                l = left_fn(rows)
                r = right_fn(rows)
                stats.comparisons += len(rows)
                if set(map(type, r if known_left else l)) - _NUMERIC_KINDS:
                    raise _VectorBail
                return list(map(cmp, l, r))

            return fn

        def fn(rows):
            l = left_fn(rows)
            r = right_fn(rows)
            stats.comparisons += len(rows)
            lk = set(map(type, l))
            rk = set(map(type, r))
            num = _NUMERIC_KINDS
            if not ((lk <= num and rk <= num) or (lk <= _STR_KINDS and rk <= _STR_KINDS)):
                raise _VectorBail
            return list(map(cmp, l, r))

        return fn

    def _vc_fused_compare(self, expr: A.Compare, var: str, stats: Stats):
        """The hottest predicate shape, fused into one loop:
        ``x.attr <op> literal`` (or mirrored).  Reads the tuple slot dict
        directly; any anomaly bails the batch."""
        op = expr.op

        def plain_attr(e):
            if (
                type(e) is A.AttrAccess
                and type(e.base) is A.Var
                and e.base.name == var
            ):
                return e.attr
            return None

        attr = plain_attr(expr.left)
        if attr is not None and type(expr.right) is A.Literal:
            k = expr.right.value
        else:
            attr = plain_attr(expr.right)
            if attr is not None and type(expr.left) is A.Literal:
                k = expr.left.value
                # mirror the operator so the loop always computes value-vs-k
                op = _MIRRORED_OPS[op]
            else:
                return None
        column = self._vc_column(attr)
        if op == "=" or op == "!=":
            ne = op == "!="

            def fn(rows):
                stats.comparisons += len(rows)
                try:
                    col = column(rows)
                    if ne:
                        return [v != k for v in col]
                    return [v == k for v in col]
                except Exception:
                    raise _VectorBail from None

            return fn
        if isinstance(k, bool) or not isinstance(k, (int, float, str)):
            return None  # the tuple engine rejects such ordered comparisons
        cmp = _ORDERED_OPS[op]
        refl = getattr(k, _REFLECTED_OPS[op])  # v <op> k  ==  k.<refl>(v)
        want_str = isinstance(k, str)
        k_is_float = isinstance(k, float)

        def fn(rows):
            stats.comparisons += len(rows)
            try:
                col = column(rows)
            except Exception:
                raise _VectorBail from None
            kinds = set(map(type, col))
            if want_str:
                # str.<refl>(str) never returns NotImplemented
                if kinds - {str}:
                    raise _VectorBail
                return list(map(refl, col))
            if kinds - {int, float}:
                raise _VectorBail
            if k_is_float or kinds <= {int}:
                # the bound reflected method handles every value class in
                # the column, so the compare is one C-level map
                return list(map(refl, col))
            # int literal vs a column with floats: int.<refl>(float) is
            # NotImplemented, so dispatch per row (validated above)
            return [cmp(v, k) for v in col]

        return fn

    def _vc_bool(self, expr, var: str, stats: Stats, is_and: bool):
        """Short-circuiting ``and``/``or`` over columns: the right operand
        is evaluated only over the rows the left operand selected, so both
        values and counter totals match tuple-at-a-time evaluation."""
        left_fn = self._vc(expr.left, var, stats)
        right_fn = self._vc(expr.right, var, stats)
        check_l = _static_kind(expr.left) != "bool"
        check_r = _static_kind(expr.right) != "bool"

        def fn(rows):
            lcol = left_fn(rows)
            if check_l and set(map(type, lcol)) - {bool}:
                raise _VectorBail
            if is_and:
                selected = list(compress(rows, lcol))
            else:
                selected = list(compress(rows, map(_op.not_, lcol)))
            if not selected:
                return lcol
            rsub = right_fn(selected)
            if check_r and set(map(type, rsub)) - {bool}:
                raise _VectorBail
            out = []
            append = out.append
            sub = iter(rsub)
            if is_and:
                for l in lcol:
                    append(next(sub) if l else False)
            else:
                for l in lcol:
                    append(True if l else next(sub))
            return out

        return fn

    def _vc_arith(self, expr: A.Arith, var: str, stats: Stats):
        op = expr.op
        left_fn = self._vc(expr.left, var, stats)
        right_fn = self._vc(expr.right, var, stats)
        arith = _ARITH_OPS[op]
        guard_zero = op == "/" or op == "%"
        check_l = _static_kind(expr.left) != "num"
        check_r = _static_kind(expr.right) != "num"

        def fn(rows):
            l = left_fn(rows)
            r = right_fn(rows)
            if check_l and set(map(type, l)) - {int, float}:
                raise _VectorBail
            if check_r and set(map(type, r)) - {int, float}:
                raise _VectorBail
            if guard_zero and any(b == 0 for b in r):
                raise _VectorBail
            return list(map(arith, l, r))

        return fn

    # -- machinery ----------------------------------------------------------
    def _compile(self, expr: A.Expr):
        """Return ``(fn, is_const)``; ``is_const`` marks closures that are
        environment-independent, pure, and counter-free (fold candidates)."""
        method = _DISPATCH.get(type(expr))
        if method is None:
            return self._fallback(expr), False
        self.compiled_nodes += 1
        fn, const = method(self, expr)
        if const and isinstance(expr, _FOLDABLE):
            try:
                value = fn({})
            except Exception:
                # the expression fails deterministically (ReproError, or e.g.
                # a TypeError from an aggregate over mixed atoms) — keep the
                # closure so the error surfaces (or not, under
                # short-circuiting) at evaluation time, exactly like the
                # interpreter
                return fn, False
            self.folded_nodes += 1
            return (lambda env: value), True
        return fn, const

    def _fallback(self, expr: A.Expr) -> CompiledFn:
        self.fallback_nodes += 1
        interp = self.interpreter

        def fn(env: Dict[str, Value]) -> Value:
            return interp._eval(expr, env)

        return fn

    def _bool(self, expr: A.Expr):
        """Compile with the interpreter's boolean-coercion check."""
        fn, const = self._compile(expr)

        def bfn(env: Dict[str, Value]) -> bool:
            value = fn(env)
            if not isinstance(value, bool):
                raise EvaluationError(f"expected boolean, got {value!r} from {expr}")
            return value

        return bfn, const

    def _setfn(self, expr: A.Expr, what: str):
        fn, const = self._compile(expr)

        def sfn(env: Dict[str, Value]) -> frozenset:
            value = fn(env)
            if not isinstance(value, frozenset):
                raise EvaluationError(f"{what} must evaluate to a set, got {value!r}")
            return value

        return sfn, const

    @staticmethod
    def _tuple(value: Value, what: str) -> VTuple:
        if not isinstance(value, VTuple):
            raise EvaluationError(f"{what} must be a tuple, got {value!r}")
        return value

    # -- atoms --------------------------------------------------------------
    def _c_literal(self, expr: A.Literal):
        value = expr.value
        return (lambda env: value), True

    def _c_var(self, expr: A.Var):
        name = expr.name

        def fn(env: Dict[str, Value]) -> Value:
            try:
                return env[name]
            except KeyError:
                raise UnboundVariableError(name) from None

        return fn, False

    def _c_extent(self, expr: A.ExtentRef):
        db = self.db
        name = expr.name
        return (lambda env: db.extent(name)), False

    def _c_param(self, expr: A.Param):
        # not const: the binding belongs to the runtime, not the expression
        # (one compiled plan must serve every binding), so the closure reads
        # the params mapping at call time
        params = self.params
        name = expr.name

        def fn(env: Dict[str, Value]) -> Value:
            try:
                return params[name]
            except KeyError:
                raise UnboundParameterError(name) from None

        return fn, False

    # -- tuple operators ----------------------------------------------------
    def _c_attr(self, expr: A.AttrAccess):
        attr = expr.attr
        db = self.db
        stats = self.stats
        what = f"operand of .{attr}"
        if isinstance(expr.base, A.Var):
            # fast path: the overwhelmingly common ``x.a`` — one closure, no
            # nested call for the variable lookup
            name = expr.base.name

            def fn(env: Dict[str, Value]) -> Value:
                try:
                    base = env[name]
                except KeyError:
                    raise UnboundVariableError(name) from None
                if isinstance(base, Oid):
                    stats.oid_derefs += 1
                    base = db.deref(base)
                if isinstance(base, VTuple):
                    return base[attr]
                raise EvaluationError(f"{what} must be a tuple, got {base!r}")

            return fn, False

        base_fn, _ = self._compile(expr.base)

        def fn(env: Dict[str, Value]) -> Value:
            base = base_fn(env)
            if isinstance(base, Oid):
                stats.oid_derefs += 1
                base = db.deref(base)
            if isinstance(base, VTuple):
                return base[attr]
            raise EvaluationError(f"{what} must be a tuple, got {base!r}")

        return fn, False

    def _deref_tuple(self, base_fn: CompiledFn, what: str) -> CompiledFn:
        db = self.db
        stats = self.stats

        def fn(env: Dict[str, Value]) -> VTuple:
            base = base_fn(env)
            if isinstance(base, Oid):
                stats.oid_derefs += 1
                base = db.deref(base)
            return self._tuple(base, what)

        return fn

    def _c_tuple(self, expr: A.TupleExpr):
        parts = [(name, self._compile(e)) for name, e in expr.fields]
        fns = tuple((name, fn) for name, (fn, _) in parts)
        const = all(c for _, (_, c) in parts)

        def fn(env: Dict[str, Value]) -> Value:
            return VTuple({name: f(env) for name, f in fns})

        return fn, const

    def _c_setexpr(self, expr: A.SetExpr):
        parts = [self._compile(e) for e in expr.elements]
        fns = tuple(fn for fn, _ in parts)
        const = all(c for _, c in parts)

        def fn(env: Dict[str, Value]) -> Value:
            return frozenset(f(env) for f in fns)

        return fn, const

    def _c_subscript(self, expr: A.TupleSubscript):
        base_fn, _ = self._compile(expr.base)
        tup_fn = self._deref_tuple(base_fn, "subscript operand")
        attrs = expr.attrs
        return (lambda env: tup_fn(env).subscript(attrs)), False

    def _c_update(self, expr: A.TupleUpdate):
        base_fn, _ = self._compile(expr.base)
        tup_fn = self._deref_tuple(base_fn, "'except' operand")
        updates = tuple((name, self._compile(e)[0]) for name, e in expr.updates)

        def fn(env: Dict[str, Value]) -> Value:
            return tup_fn(env).update_except({name: f(env) for name, f in updates})

        return fn, False

    def _c_concat(self, expr: A.Concat):
        left_fn, lc = self._compile(expr.left)
        right_fn, rc = self._compile(expr.right)

        def fn(env: Dict[str, Value]) -> Value:
            return concat(
                self._tuple(left_fn(env), "concat operand"),
                self._tuple(right_fn(env), "concat operand"),
            )

        return fn, lc and rc

    # -- scalar operators ---------------------------------------------------
    def _c_arith(self, expr: A.Arith):
        left_fn, lc = self._compile(expr.left)
        right_fn, rc = self._compile(expr.right)
        op = expr.op

        def fn(env: Dict[str, Value]) -> Value:
            left = left_fn(env)
            right = right_fn(env)
            for v in (left, right):
                if isinstance(v, bool) or not isinstance(v, (int, float)):
                    raise EvaluationError(f"arithmetic on non-number {v!r}")
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    raise EvaluationError("division by zero")
                return left / right
            if right == 0:
                raise EvaluationError("modulo by zero")
            return left % right

        return fn, lc and rc

    def _c_neg(self, expr: A.Neg):
        operand_fn, const = self._compile(expr.operand)

        def fn(env: Dict[str, Value]) -> Value:
            value = operand_fn(env)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise EvaluationError(f"negation of non-number {value!r}")
            return -value

        return fn, const

    def _c_compare(self, expr: A.Compare):
        left_fn, _ = self._compile(expr.left)
        right_fn, _ = self._compile(expr.right)
        op = expr.op
        stats = self.stats
        if op == "=":

            def fn(env: Dict[str, Value]) -> Value:
                stats.comparisons += 1
                return left_fn(env) == right_fn(env)

            return fn, False
        if op == "!=":

            def fn(env: Dict[str, Value]) -> Value:
                stats.comparisons += 1
                return left_fn(env) != right_fn(env)

            return fn, False

        def fn(env: Dict[str, Value]) -> Value:
            left = left_fn(env)
            right = right_fn(env)
            stats.comparisons += 1
            for v in (left, right):
                if isinstance(v, bool) or not isinstance(v, (int, float, str)):
                    raise EvaluationError(f"ordered comparison on {v!r}")
            if isinstance(left, str) != isinstance(right, str):
                raise EvaluationError(
                    f"ordered comparison across types: {left!r} vs {right!r}"
                )
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            return left >= right

        return fn, False

    def _c_setcompare(self, expr: A.SetCompare):
        left_fn, _ = self._compile(expr.left)
        right_fn, _ = self._compile(expr.right)
        op = expr.op
        stats = self.stats
        if op in ("in", "notin"):

            def fn(env: Dict[str, Value]) -> Value:
                left = left_fn(env)
                right = right_fn(env)
                stats.comparisons += 1
                if not isinstance(right, frozenset):
                    raise EvaluationError(f"∈ right operand must be a set, got {right!r}")
                return (left in right) if op == "in" else (left not in right)

            return fn, False
        if op in ("ni", "notni"):

            def fn(env: Dict[str, Value]) -> Value:
                left = left_fn(env)
                right = right_fn(env)
                stats.comparisons += 1
                if not isinstance(left, frozenset):
                    raise EvaluationError(f"∋ left operand must be a set, got {left!r}")
                return (right in left) if op == "ni" else (right not in left)

            return fn, False

        def fn(env: Dict[str, Value]) -> Value:
            left = left_fn(env)
            right = right_fn(env)
            stats.comparisons += 1
            if not isinstance(left, frozenset) or not isinstance(right, frozenset):
                raise EvaluationError(f"set comparison {op} on non-sets: {left!r}, {right!r}")
            if op == "subset":
                return left < right
            if op == "subseteq":
                return left <= right
            if op == "seteq":
                return left == right
            if op == "setneq":
                return left != right
            if op == "supseteq":
                return left >= right
            if op == "supset":
                return left > right
            return not (left & right)  # disjoint

        return fn, False

    # -- boolean ------------------------------------------------------------
    def _c_and(self, expr: A.And):
        left_fn, lc = self._bool(expr.left)
        right_fn, rc = self._bool(expr.right)
        return (lambda env: left_fn(env) and right_fn(env)), lc and rc

    def _c_or(self, expr: A.Or):
        left_fn, lc = self._bool(expr.left)
        right_fn, rc = self._bool(expr.right)
        return (lambda env: left_fn(env) or right_fn(env)), lc and rc

    def _c_not(self, expr: A.Not):
        operand_fn, const = self._bool(expr.operand)
        return (lambda env: not operand_fn(env)), const

    def _c_isempty(self, expr: A.IsEmpty):
        operand_fn, const = self._setfn(expr.operand, "emptiness test operand")
        return (lambda env: not operand_fn(env)), const

    # -- quantifiers --------------------------------------------------------
    def _c_exists(self, expr: A.Exists):
        return self._quantifier(expr, "∃ range", True)

    def _c_forall(self, expr: A.Forall):
        return self._quantifier(expr, "∀ range", False)

    def _quantifier(self, expr, what: str, is_exists: bool):
        source_fn, _ = self._setfn(expr.source, what)
        pred_fn, _ = self._bool(expr.pred)
        var = expr.var
        stats = self.stats

        def fn(env: Dict[str, Value]) -> Value:
            source = source_fn(env)
            old = env.get(var, _MISSING)
            try:
                for item in source:
                    stats.tuples_visited += 1
                    env[var] = item
                    stats.predicate_evals += 1
                    if pred_fn(env) is is_exists:
                        return is_exists
                return not is_exists
            finally:
                if old is _MISSING:
                    env.pop(var, None)
                else:
                    env[var] = old

        return fn, False

    # -- set algebra --------------------------------------------------------
    def _c_union(self, expr: A.Union):
        left_fn, lc = self._setfn(expr.left, "union operand")
        right_fn, rc = self._setfn(expr.right, "union operand")
        return (lambda env: left_fn(env) | right_fn(env)), lc and rc

    def _c_intersect(self, expr: A.Intersect):
        left_fn, lc = self._setfn(expr.left, "intersect operand")
        right_fn, rc = self._setfn(expr.right, "intersect operand")
        return (lambda env: left_fn(env) & right_fn(env)), lc and rc

    def _c_difference(self, expr: A.Difference):
        left_fn, lc = self._setfn(expr.left, "difference operand")
        right_fn, rc = self._setfn(expr.right, "difference operand")
        return (lambda env: left_fn(env) - right_fn(env)), lc and rc

    # -- aggregates ---------------------------------------------------------
    def _c_aggregate(self, expr: A.Aggregate):
        source_fn, const = self._setfn(expr.source, "aggregate operand")
        func = expr.func

        def fn(env: Dict[str, Value]) -> Value:
            source = source_fn(env)
            if func == "count":
                return len(source)
            if not source:
                if func == "sum":
                    return 0
                raise EvaluationError(f"{func} over an empty set")
            values = list(source)
            for v in values:
                if isinstance(v, bool) or not isinstance(v, (int, float, str)):
                    raise EvaluationError(f"aggregate {func} over non-atom {v!r}")
            if func == "sum":
                return sum(values)  # type: ignore[arg-type]
            if func == "min":
                return min(values)  # type: ignore[type-var]
            if func == "max":
                return max(values)  # type: ignore[type-var]
            numeric = [v for v in values if isinstance(v, (int, float))]
            if len(numeric) != len(values):
                raise EvaluationError("avg over non-numeric values")
            return sum(numeric) / len(numeric)

        return fn, const


_DISPATCH = {
    A.Literal: Compiler._c_literal,
    A.Var: Compiler._c_var,
    A.ExtentRef: Compiler._c_extent,
    A.Param: Compiler._c_param,
    A.AttrAccess: Compiler._c_attr,
    A.TupleExpr: Compiler._c_tuple,
    A.SetExpr: Compiler._c_setexpr,
    A.TupleSubscript: Compiler._c_subscript,
    A.TupleUpdate: Compiler._c_update,
    A.Concat: Compiler._c_concat,
    A.Arith: Compiler._c_arith,
    A.Neg: Compiler._c_neg,
    A.Compare: Compiler._c_compare,
    A.SetCompare: Compiler._c_setcompare,
    A.And: Compiler._c_and,
    A.Or: Compiler._c_or,
    A.Not: Compiler._c_not,
    A.IsEmpty: Compiler._c_isempty,
    A.Exists: Compiler._c_exists,
    A.Forall: Compiler._c_forall,
    A.Union: Compiler._c_union,
    A.Intersect: Compiler._c_intersect,
    A.Difference: Compiler._c_difference,
    A.Aggregate: Compiler._c_aggregate,
}

#: Node types the compiler handles natively (everything else falls back to
#: the interpreter).  Exposed for tests and ``explain``-style reporting.
COMPILED_NODE_TYPES = frozenset(_DISPATCH)


def compile_expr(expr: A.Expr, db, stats: Optional[Stats] = None, interpreter=None) -> CompiledFn:
    """One-shot convenience: compile ``expr`` against ``db``/``stats``."""
    from repro.engine.interpreter import Interpreter

    stats = stats if stats is not None else Stats()
    interp = interpreter if interpreter is not None else Interpreter(db, stats)
    return Compiler(db, stats, interp).compile(expr)
