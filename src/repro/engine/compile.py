"""Compilation of ADL expressions into Python closures.

The reference :class:`~repro.engine.interpreter.Interpreter` re-walks the
AST for every tuple an operator touches: one dictionary dispatch, one
method call, and (at the public entry point) one environment copy *per
node per tuple*.  That tuple-oriented overhead is exactly what the paper
blames nested-loop processing for.  The physical operators therefore
compile their parameter expressions — predicates, hash keys, nestjoin
result functions — **once per operator** into plain Python closures
``fn(env) -> value`` and call those in their inner loops.

Design rules:

* **Semantics**: a compiled closure must be observationally identical to
  ``Interpreter._eval`` on the same expression — same values, same error
  types and messages, same short-circuiting.  The test suite checks this
  oracle-equality over a battery of expression forms.
* **Counters**: compiled closures maintain the same :class:`Stats`
  counters the interpreter maintains (``comparisons``, ``oid_derefs``,
  ``tuples_visited``/``predicate_evals`` inside quantifiers), so work
  accounting stays comparable across engines.  Consequently **constant
  folding is restricted to counter-free node types** — a folded ``Compare``
  would silently stop counting.
* **Fallback**: node types the compiler does not cover (the set iterators
  ``Map``/``Select``/joins, restructuring, ``Materialize``...) compile
  into a closure that delegates the whole subtree to the interpreter, so
  coverage gaps can never change behaviour.  The per-compiler census
  (:attr:`Compiler.fallback_nodes`) makes the gap measurable.

Binding discipline: the interpreter copies the environment at every
binder; compiled quantifiers instead save and restore the single bound
name around the loop (``try/finally``, so a raising predicate cannot leak
a binding into the caller's environment).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.adl import ast as A
from repro.datamodel.errors import EvaluationError, UnboundParameterError, UnboundVariableError
from repro.datamodel.values import Oid, Value, VTuple, concat
from repro.engine.stats import Stats

#: A compiled expression: evaluate against a mutable environment dict.
CompiledFn = Callable[[Dict[str, Value]], Value]

_MISSING = object()

#: Node types that are pure and counter-free: safe to evaluate at compile
#: time when all their inputs are constants.  ``Compare``/``SetCompare``
#: (they count comparisons) and anything that may dereference an oid
#: (``AttrAccess``, ``TupleSubscript``, ``TupleUpdate`` — they count
#: ``oid_derefs`` and read database state) are deliberately excluded.
_FOLDABLE = (
    A.Arith,
    A.Neg,
    A.And,
    A.Or,
    A.Not,
    A.IsEmpty,
    A.TupleExpr,
    A.SetExpr,
    A.Concat,
    A.Union,
    A.Intersect,
    A.Difference,
    A.Aggregate,
)


class Compiler:
    """Compiles ADL expressions against one database + stats bundle.

    One instance per :class:`~repro.engine.plan.ExecRuntime`; closures
    capture ``db``/``stats`` directly so the hot path carries no runtime
    lookups.  ``interpreter`` supplies the fallback evaluation.
    """

    def __init__(self, db, stats: Stats, interpreter, params=None) -> None:
        self.db = db
        self.stats = stats
        self.interpreter = interpreter
        #: prepared-statement parameter bindings for this runtime's
        #: executions; ``Param`` closures read it at call time.  Kept by
        #: reference (not copied) so the runtime that owns the mapping can
        #: rebind between runs without recompiling.
        self.params: Dict[str, Value] = params if params is not None else {}
        #: census: how many AST nodes compiled natively / fell back / folded
        self.compiled_nodes = 0
        self.fallback_nodes = 0
        self.folded_nodes = 0

    # -- public API ---------------------------------------------------------
    def compile(self, expr: A.Expr) -> CompiledFn:
        fn, _ = self._compile(expr)
        return fn

    def compile_pred(self, expr: A.Expr) -> Callable[[Dict[str, Value]], bool]:
        """Compile a predicate: counts ``predicate_evals`` and enforces the
        boolean result exactly like ``ExecRuntime.eval_pred``."""
        fn, _ = self._compile(expr)
        stats = self.stats

        def pred(env: Dict[str, Value]) -> bool:
            stats.predicate_evals += 1
            value = fn(env)
            if not isinstance(value, bool):
                raise EvaluationError(f"predicate produced non-boolean {value!r}")
            return value

        return pred

    # -- machinery ----------------------------------------------------------
    def _compile(self, expr: A.Expr):
        """Return ``(fn, is_const)``; ``is_const`` marks closures that are
        environment-independent, pure, and counter-free (fold candidates)."""
        method = _DISPATCH.get(type(expr))
        if method is None:
            return self._fallback(expr), False
        self.compiled_nodes += 1
        fn, const = method(self, expr)
        if const and isinstance(expr, _FOLDABLE):
            try:
                value = fn({})
            except Exception:
                # the expression fails deterministically (ReproError, or e.g.
                # a TypeError from an aggregate over mixed atoms) — keep the
                # closure so the error surfaces (or not, under
                # short-circuiting) at evaluation time, exactly like the
                # interpreter
                return fn, False
            self.folded_nodes += 1
            return (lambda env: value), True
        return fn, const

    def _fallback(self, expr: A.Expr) -> CompiledFn:
        self.fallback_nodes += 1
        interp = self.interpreter

        def fn(env: Dict[str, Value]) -> Value:
            return interp._eval(expr, env)

        return fn

    def _bool(self, expr: A.Expr):
        """Compile with the interpreter's boolean-coercion check."""
        fn, const = self._compile(expr)

        def bfn(env: Dict[str, Value]) -> bool:
            value = fn(env)
            if not isinstance(value, bool):
                raise EvaluationError(f"expected boolean, got {value!r} from {expr}")
            return value

        return bfn, const

    def _setfn(self, expr: A.Expr, what: str):
        fn, const = self._compile(expr)

        def sfn(env: Dict[str, Value]) -> frozenset:
            value = fn(env)
            if not isinstance(value, frozenset):
                raise EvaluationError(f"{what} must evaluate to a set, got {value!r}")
            return value

        return sfn, const

    @staticmethod
    def _tuple(value: Value, what: str) -> VTuple:
        if not isinstance(value, VTuple):
            raise EvaluationError(f"{what} must be a tuple, got {value!r}")
        return value

    # -- atoms --------------------------------------------------------------
    def _c_literal(self, expr: A.Literal):
        value = expr.value
        return (lambda env: value), True

    def _c_var(self, expr: A.Var):
        name = expr.name

        def fn(env: Dict[str, Value]) -> Value:
            try:
                return env[name]
            except KeyError:
                raise UnboundVariableError(name) from None

        return fn, False

    def _c_extent(self, expr: A.ExtentRef):
        db = self.db
        name = expr.name
        return (lambda env: db.extent(name)), False

    def _c_param(self, expr: A.Param):
        # not const: the binding belongs to the runtime, not the expression
        # (one compiled plan must serve every binding), so the closure reads
        # the params mapping at call time
        params = self.params
        name = expr.name

        def fn(env: Dict[str, Value]) -> Value:
            try:
                return params[name]
            except KeyError:
                raise UnboundParameterError(name) from None

        return fn, False

    # -- tuple operators ----------------------------------------------------
    def _c_attr(self, expr: A.AttrAccess):
        attr = expr.attr
        db = self.db
        stats = self.stats
        what = f"operand of .{attr}"
        if isinstance(expr.base, A.Var):
            # fast path: the overwhelmingly common ``x.a`` — one closure, no
            # nested call for the variable lookup
            name = expr.base.name

            def fn(env: Dict[str, Value]) -> Value:
                try:
                    base = env[name]
                except KeyError:
                    raise UnboundVariableError(name) from None
                if isinstance(base, Oid):
                    stats.oid_derefs += 1
                    base = db.deref(base)
                if isinstance(base, VTuple):
                    return base[attr]
                raise EvaluationError(f"{what} must be a tuple, got {base!r}")

            return fn, False

        base_fn, _ = self._compile(expr.base)

        def fn(env: Dict[str, Value]) -> Value:
            base = base_fn(env)
            if isinstance(base, Oid):
                stats.oid_derefs += 1
                base = db.deref(base)
            if isinstance(base, VTuple):
                return base[attr]
            raise EvaluationError(f"{what} must be a tuple, got {base!r}")

        return fn, False

    def _deref_tuple(self, base_fn: CompiledFn, what: str) -> CompiledFn:
        db = self.db
        stats = self.stats

        def fn(env: Dict[str, Value]) -> VTuple:
            base = base_fn(env)
            if isinstance(base, Oid):
                stats.oid_derefs += 1
                base = db.deref(base)
            return self._tuple(base, what)

        return fn

    def _c_tuple(self, expr: A.TupleExpr):
        parts = [(name, self._compile(e)) for name, e in expr.fields]
        fns = tuple((name, fn) for name, (fn, _) in parts)
        const = all(c for _, (_, c) in parts)

        def fn(env: Dict[str, Value]) -> Value:
            return VTuple({name: f(env) for name, f in fns})

        return fn, const

    def _c_setexpr(self, expr: A.SetExpr):
        parts = [self._compile(e) for e in expr.elements]
        fns = tuple(fn for fn, _ in parts)
        const = all(c for _, c in parts)

        def fn(env: Dict[str, Value]) -> Value:
            return frozenset(f(env) for f in fns)

        return fn, const

    def _c_subscript(self, expr: A.TupleSubscript):
        base_fn, _ = self._compile(expr.base)
        tup_fn = self._deref_tuple(base_fn, "subscript operand")
        attrs = expr.attrs
        return (lambda env: tup_fn(env).subscript(attrs)), False

    def _c_update(self, expr: A.TupleUpdate):
        base_fn, _ = self._compile(expr.base)
        tup_fn = self._deref_tuple(base_fn, "'except' operand")
        updates = tuple((name, self._compile(e)[0]) for name, e in expr.updates)

        def fn(env: Dict[str, Value]) -> Value:
            return tup_fn(env).update_except({name: f(env) for name, f in updates})

        return fn, False

    def _c_concat(self, expr: A.Concat):
        left_fn, lc = self._compile(expr.left)
        right_fn, rc = self._compile(expr.right)

        def fn(env: Dict[str, Value]) -> Value:
            return concat(
                self._tuple(left_fn(env), "concat operand"),
                self._tuple(right_fn(env), "concat operand"),
            )

        return fn, lc and rc

    # -- scalar operators ---------------------------------------------------
    def _c_arith(self, expr: A.Arith):
        left_fn, lc = self._compile(expr.left)
        right_fn, rc = self._compile(expr.right)
        op = expr.op

        def fn(env: Dict[str, Value]) -> Value:
            left = left_fn(env)
            right = right_fn(env)
            for v in (left, right):
                if isinstance(v, bool) or not isinstance(v, (int, float)):
                    raise EvaluationError(f"arithmetic on non-number {v!r}")
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    raise EvaluationError("division by zero")
                return left / right
            if right == 0:
                raise EvaluationError("modulo by zero")
            return left % right

        return fn, lc and rc

    def _c_neg(self, expr: A.Neg):
        operand_fn, const = self._compile(expr.operand)

        def fn(env: Dict[str, Value]) -> Value:
            value = operand_fn(env)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise EvaluationError(f"negation of non-number {value!r}")
            return -value

        return fn, const

    def _c_compare(self, expr: A.Compare):
        left_fn, _ = self._compile(expr.left)
        right_fn, _ = self._compile(expr.right)
        op = expr.op
        stats = self.stats
        if op == "=":

            def fn(env: Dict[str, Value]) -> Value:
                stats.comparisons += 1
                return left_fn(env) == right_fn(env)

            return fn, False
        if op == "!=":

            def fn(env: Dict[str, Value]) -> Value:
                stats.comparisons += 1
                return left_fn(env) != right_fn(env)

            return fn, False

        def fn(env: Dict[str, Value]) -> Value:
            left = left_fn(env)
            right = right_fn(env)
            stats.comparisons += 1
            for v in (left, right):
                if isinstance(v, bool) or not isinstance(v, (int, float, str)):
                    raise EvaluationError(f"ordered comparison on {v!r}")
            if isinstance(left, str) != isinstance(right, str):
                raise EvaluationError(
                    f"ordered comparison across types: {left!r} vs {right!r}"
                )
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            return left >= right

        return fn, False

    def _c_setcompare(self, expr: A.SetCompare):
        left_fn, _ = self._compile(expr.left)
        right_fn, _ = self._compile(expr.right)
        op = expr.op
        stats = self.stats
        if op in ("in", "notin"):

            def fn(env: Dict[str, Value]) -> Value:
                left = left_fn(env)
                right = right_fn(env)
                stats.comparisons += 1
                if not isinstance(right, frozenset):
                    raise EvaluationError(f"∈ right operand must be a set, got {right!r}")
                return (left in right) if op == "in" else (left not in right)

            return fn, False
        if op in ("ni", "notni"):

            def fn(env: Dict[str, Value]) -> Value:
                left = left_fn(env)
                right = right_fn(env)
                stats.comparisons += 1
                if not isinstance(left, frozenset):
                    raise EvaluationError(f"∋ left operand must be a set, got {left!r}")
                return (right in left) if op == "ni" else (right not in left)

            return fn, False

        def fn(env: Dict[str, Value]) -> Value:
            left = left_fn(env)
            right = right_fn(env)
            stats.comparisons += 1
            if not isinstance(left, frozenset) or not isinstance(right, frozenset):
                raise EvaluationError(f"set comparison {op} on non-sets: {left!r}, {right!r}")
            if op == "subset":
                return left < right
            if op == "subseteq":
                return left <= right
            if op == "seteq":
                return left == right
            if op == "setneq":
                return left != right
            if op == "supseteq":
                return left >= right
            if op == "supset":
                return left > right
            return not (left & right)  # disjoint

        return fn, False

    # -- boolean ------------------------------------------------------------
    def _c_and(self, expr: A.And):
        left_fn, lc = self._bool(expr.left)
        right_fn, rc = self._bool(expr.right)
        return (lambda env: left_fn(env) and right_fn(env)), lc and rc

    def _c_or(self, expr: A.Or):
        left_fn, lc = self._bool(expr.left)
        right_fn, rc = self._bool(expr.right)
        return (lambda env: left_fn(env) or right_fn(env)), lc and rc

    def _c_not(self, expr: A.Not):
        operand_fn, const = self._bool(expr.operand)
        return (lambda env: not operand_fn(env)), const

    def _c_isempty(self, expr: A.IsEmpty):
        operand_fn, const = self._setfn(expr.operand, "emptiness test operand")
        return (lambda env: not operand_fn(env)), const

    # -- quantifiers --------------------------------------------------------
    def _c_exists(self, expr: A.Exists):
        return self._quantifier(expr, "∃ range", True)

    def _c_forall(self, expr: A.Forall):
        return self._quantifier(expr, "∀ range", False)

    def _quantifier(self, expr, what: str, is_exists: bool):
        source_fn, _ = self._setfn(expr.source, what)
        pred_fn, _ = self._bool(expr.pred)
        var = expr.var
        stats = self.stats

        def fn(env: Dict[str, Value]) -> Value:
            source = source_fn(env)
            old = env.get(var, _MISSING)
            try:
                for item in source:
                    stats.tuples_visited += 1
                    env[var] = item
                    stats.predicate_evals += 1
                    if pred_fn(env) is is_exists:
                        return is_exists
                return not is_exists
            finally:
                if old is _MISSING:
                    env.pop(var, None)
                else:
                    env[var] = old

        return fn, False

    # -- set algebra --------------------------------------------------------
    def _c_union(self, expr: A.Union):
        left_fn, lc = self._setfn(expr.left, "union operand")
        right_fn, rc = self._setfn(expr.right, "union operand")
        return (lambda env: left_fn(env) | right_fn(env)), lc and rc

    def _c_intersect(self, expr: A.Intersect):
        left_fn, lc = self._setfn(expr.left, "intersect operand")
        right_fn, rc = self._setfn(expr.right, "intersect operand")
        return (lambda env: left_fn(env) & right_fn(env)), lc and rc

    def _c_difference(self, expr: A.Difference):
        left_fn, lc = self._setfn(expr.left, "difference operand")
        right_fn, rc = self._setfn(expr.right, "difference operand")
        return (lambda env: left_fn(env) - right_fn(env)), lc and rc

    # -- aggregates ---------------------------------------------------------
    def _c_aggregate(self, expr: A.Aggregate):
        source_fn, const = self._setfn(expr.source, "aggregate operand")
        func = expr.func

        def fn(env: Dict[str, Value]) -> Value:
            source = source_fn(env)
            if func == "count":
                return len(source)
            if not source:
                if func == "sum":
                    return 0
                raise EvaluationError(f"{func} over an empty set")
            values = list(source)
            for v in values:
                if isinstance(v, bool) or not isinstance(v, (int, float, str)):
                    raise EvaluationError(f"aggregate {func} over non-atom {v!r}")
            if func == "sum":
                return sum(values)  # type: ignore[arg-type]
            if func == "min":
                return min(values)  # type: ignore[type-var]
            if func == "max":
                return max(values)  # type: ignore[type-var]
            numeric = [v for v in values if isinstance(v, (int, float))]
            if len(numeric) != len(values):
                raise EvaluationError("avg over non-numeric values")
            return sum(numeric) / len(numeric)

        return fn, const


_DISPATCH = {
    A.Literal: Compiler._c_literal,
    A.Var: Compiler._c_var,
    A.ExtentRef: Compiler._c_extent,
    A.Param: Compiler._c_param,
    A.AttrAccess: Compiler._c_attr,
    A.TupleExpr: Compiler._c_tuple,
    A.SetExpr: Compiler._c_setexpr,
    A.TupleSubscript: Compiler._c_subscript,
    A.TupleUpdate: Compiler._c_update,
    A.Concat: Compiler._c_concat,
    A.Arith: Compiler._c_arith,
    A.Neg: Compiler._c_neg,
    A.Compare: Compiler._c_compare,
    A.SetCompare: Compiler._c_setcompare,
    A.And: Compiler._c_and,
    A.Or: Compiler._c_or,
    A.Not: Compiler._c_not,
    A.IsEmpty: Compiler._c_isempty,
    A.Exists: Compiler._c_exists,
    A.Forall: Compiler._c_forall,
    A.Union: Compiler._c_union,
    A.Intersect: Compiler._c_intersect,
    A.Difference: Compiler._c_difference,
    A.Aggregate: Compiler._c_aggregate,
}

#: Node types the compiler handles natively (everything else falls back to
#: the interpreter).  Exposed for tests and ``explain``-style reporting.
COMPILED_NODE_TYPES = frozenset(_DISPATCH)


def compile_expr(expr: A.Expr, db, stats: Optional[Stats] = None, interpreter=None) -> CompiledFn:
    """One-shot convenience: compile ``expr`` against ``db``/``stats``."""
    from repro.engine.interpreter import Interpreter

    stats = stats if stats is not None else Stats()
    interp = interpreter if interpreter is not None else Interpreter(db, stats)
    return Compiler(db, stats, interp).compile(expr)
