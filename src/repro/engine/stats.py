"""Execution statistics — the currency of the paper's argument.

"Tuple-oriented versus set-oriented query processing" is an access-pattern
claim; these counters make it measurable without real I/O hardware:

* ``predicate_evals`` — how many times a selection/join predicate ran.
  Nested-loop evaluation of a correlated subquery costs |X|·|Y| of these;
  a hash semijoin costs O(|X| + |Y|) probes instead.
* ``tuples_visited`` — every tuple an operator iterated over;
* ``hash_inserts`` / ``hash_probes`` — hash operator work;
* ``index_probes`` — lookups against persistent catalog indexes
  (index scans and index nested-loop joins);
* ``oid_derefs`` — pointer follow count (materialize/assembly);
* ``partitions_spilled`` — PNHL memory-budget overflow events;
* ``output_tuples`` — tuples emitted by operators;
* ``pipeline_breaks`` — how many operator inputs had to be fully
  materialized before the operator could emit (hash builds, grouping,
  sorting...).  Not part of :meth:`Stats.total_work` — a break is a
  *shape* property of the plan's dataflow, not per-tuple effort.
* ``batches_emitted`` / ``vector_fallbacks`` — vectorized execution
  (PR 8): columnar chunks produced, and batch kernels that had to apply
  the tuple-wise closure per element because the expression form is not
  covered by the vectorizing compiler.  Like ``pipeline_breaks``, both
  describe *how* the work ran, not how much work there was, so neither
  joins :meth:`Stats.total_work` — batch and tuple mode stay comparable
  on the same work currency.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class Stats:
    """Mutable counter bundle threaded through interpreters and operators."""

    predicate_evals: int = 0
    tuples_visited: int = 0
    hash_inserts: int = 0
    hash_probes: int = 0
    index_probes: int = 0
    comparisons: int = 0
    oid_derefs: int = 0
    partitions_spilled: int = 0
    output_tuples: int = 0
    pipeline_breaks: int = 0
    batches_emitted: int = 0
    vector_fallbacks: int = 0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def total_work(self) -> int:
        """A single scalar summarizing operator effort, for quick ratios."""
        return (
            self.predicate_evals
            + self.tuples_visited
            + self.hash_inserts
            + self.hash_probes
            + self.index_probes
            + self.comparisons
            + self.oid_derefs
        )

    def __add__(self, other: "Stats") -> "Stats":
        if not isinstance(other, Stats):
            return NotImplemented
        merged = Stats()
        for f in fields(self):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{f.name}={getattr(self, f.name)}" for f in fields(self) if getattr(self, f.name)
        )
        return f"Stats({parts})"
