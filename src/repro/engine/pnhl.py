"""PNHL — Partitioned Nested-Hashed-Loops ([DeLa92], Section 6.2).

The algorithm joins a *set-valued attribute* of an outer table with a flat
inner table under a memory budget, without unnesting:

1. partition the **flat** table into segments that fit in memory (the
   paper's observation: "in the PNHL algorithm, only the flat table can be
   the build table");
2. for each segment, build a hash table and probe it with every member of
   every outer tuple's set-valued attribute, accumulating *partial*
   per-outer-tuple results;
3. merge the partial results across segments.

Outer tuples with empty sets survive with an empty joined set — the
behaviour the unnest–join–nest baseline gets wrong (``ν`` after ``μ``
cannot resurrect a tuple ``μ`` dropped; nest and unnest are only inverses
for PNF relations without empty sets, Section 4).

:func:`unnest_join_nest` implements that baseline faithfully, bugs
included, so benchmarks can compare both cost *and* correctness.

Memory is simulated: ``memory_budget`` caps the number of inner tuples
hashed at once; each extra segment charges a re-scan of the outer table
and bumps ``stats.partitions_spilled``.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.datamodel.errors import EvaluationError
from repro.datamodel.values import Value, VTuple, concat
from repro.engine.stats import Stats


def pnhl_join(
    outer: Iterable[VTuple],
    set_attr: str,
    inner: Iterable[VTuple],
    outer_member_key: Callable[[VTuple], Value],
    inner_key: Callable[[VTuple], Value],
    memory_budget: Optional[int] = None,
    stats: Optional[Stats] = None,
    combine: Callable[[VTuple, VTuple], Value] = concat,
) -> frozenset:
    """Join each outer tuple's ``set_attr`` members with the inner table.

    Returns ``{ x except (set_attr = {combine(m, y) | m ∈ x.set_attr,
    y ∈ inner, outer_member_key(m) = inner_key(y)}) | x ∈ outer }`` — the
    paper's nested natural-join example shape.

    ``memory_budget`` is the maximum number of inner tuples hashed per
    segment (``None`` = unbounded, single segment).
    """
    stats = stats if stats is not None else Stats()
    outer_rows = list(outer)
    inner_rows = list(inner)
    if memory_budget is not None and memory_budget <= 0:
        raise EvaluationError("PNHL memory budget must be positive")

    segment_size = len(inner_rows) if memory_budget is None else memory_budget
    segment_size = max(segment_size, 1)
    segments = [
        inner_rows[i : i + segment_size] for i in range(0, len(inner_rows), segment_size)
    ] or [[]]
    if len(segments) > 1:
        stats.partitions_spilled += len(segments) - 1

    # partial results: outer tuple index -> set of combined members
    partials: List[set] = [set() for _ in outer_rows]
    for segment in segments:
        table = {}
        for y in segment:
            table.setdefault(inner_key(y), []).append(y)
            stats.hash_inserts += 1
        for index, x in enumerate(outer_rows):
            stats.tuples_visited += 1
            members = x[set_attr]
            if not isinstance(members, frozenset):
                raise EvaluationError(f"attribute {set_attr!r} is not set-valued")
            for member in members:
                stats.hash_probes += 1
                for y in table.get(outer_member_key(member), ()):
                    partials[index].add(combine(member, y))

    out = set()
    for x, joined in zip(outer_rows, partials):
        out.add(x.update_except({set_attr: frozenset(joined)}))
    stats.output_tuples += len(out)
    return frozenset(out)


def unnest_join_nest(
    outer: Iterable[VTuple],
    set_attr: str,
    inner: Iterable[VTuple],
    outer_member_key: Callable[[VTuple], Value],
    inner_key: Callable[[VTuple], Value],
    stats: Optional[Stats] = None,
) -> frozenset:
    """The μ–⋈–ν baseline PNHL is measured against.

    Faithful to the restructuring semantics, **including its defect**:
    outer tuples with an empty set-valued attribute are dropped by ``μ``
    and never come back — nest/unnest are only inverses on PNF relations
    with no empty sets (Section 4).  The duplication cost is also real:
    every outer tuple's non-set attributes are copied once per member.
    """
    stats = stats if stats is not None else Stats()

    # μ: flatten members alongside a copy of the parent attributes.  The
    # unnested stream is never materialized — it flows straight through the
    # join probe into the regrouping below (Volcano-style), so the only
    # full materialization this baseline pays is the ν grouping itself.
    def flat():
        for x in outer:
            members = x[set_attr]
            rest = x.drop((set_attr,))
            for member in members:
                stats.tuples_visited += 1
                yield member, rest

    # ⋈: hash join the flattened members with the inner table
    table = {}
    for y in inner:
        table.setdefault(inner_key(y), []).append(y)
        stats.hash_inserts += 1

    def joined():
        for member, rest in flat():
            stats.hash_probes += 1
            for y in table.get(outer_member_key(member), ()):
                yield concat(member, y), rest

    # ν: regroup by the parent attributes (the pipeline break)
    stats.pipeline_breaks += 1
    groups = {}
    for combined, rest in joined():
        stats.tuples_visited += 1
        groups.setdefault(rest, set()).add(combined)
    out = set()
    for rest, group in groups.items():
        out.add(rest.update_except({set_attr: frozenset(group)}))
    stats.output_tuples += len(out)
    return frozenset(out)
