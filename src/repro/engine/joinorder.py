"""Join-graph extraction and DP join reordering over the ADL algebra.

The rewriter (Section 4) emits join trees in whatever order the source
query happened to mention its extents; PR 2's planner then priced physical
strategies *for that tree*.  This module closes the gap the ROADMAP called
out as "no join reordering": between rewriting and physical planning, every
maximal region of plain joins is

1. **extracted into a join graph** — leaves are the region's non-join
   operands (extents, selections over extents, or opaque subplans), edges
   are the equality conjuncts linking two leaves, single-leaf conjuncts
   are pushed down onto their leaf as selections, and conjuncts spanning
   more than two leaves (or non-equality two-leaf conjuncts) become
   residual predicates applied at the first join that covers them;
2. **re-enumerated by dynamic programming** — left-deep always, bushy
   trees behind a flag — scored with the PR-2 cardinality model
   (:class:`~repro.engine.cost.CostModel`): per pair the enumerator prices
   a hash join with either build side, an index nested-loop join when the
   right operand is an indexed extent (a pushed-down selection may ride
   along as a residual), and nested loops, keeping the cheapest.
   Cross products are avoided unless the graph is disconnected, in which
   case connected components are ordered independently and then combined
   smallest-first;
3. **emitted back into the algebra** as a tree of plain :class:`~repro.adl.ast.Join`
   nodes with fresh variables, which the physical planner then plans as
   usual — so rewrite choice, join order and physical strategy all flow
   through the same pricing surface.

Safety: reordering only fires on *closed* plain-join regions (correlated
operands keep their order), only when every predicate attribute resolves
to exactly one leaf (ambiguous or whole-tuple references bail out and the
original tree is kept), and only when it is estimated cheaper than the
original order.  Regions of fewer than three leaves are left alone — the
planner's build-side/index enumeration already covers the two-operand
choice.  Semijoins, antijoins, outerjoins and nestjoins are never
reordered across (their semantics are anchored to the left operand); a
plain-join region *inside* one of their operands still is.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.adl import ast as A
from repro.adl.freevars import all_var_names, free_vars, fresh_name
from repro.adl.subst import substitute
from repro.engine.cost import (
    EQ_SELECTIVITY,
    PREDICATE_COST,
    RESIDUAL_SELECTIVITY,
    CostModel,
    Estimate,
)

TRUE = A.Literal(True)

#: Left-deep DP cap: beyond this many leaves the region is left as-is
#: (subset enumeration is 2^n; twelve leaves keep it in the tens of
#: thousands of states).
MAX_DP_LEAVES = 12

#: Bushy enumeration additionally iterates subset *partitions* (3^n), so
#: it caps earlier and falls back to left-deep in between.
MAX_BUSHY_LEAVES = 10


class _Bail(Exception):
    """Extraction cannot prove the region safe to reorder — keep it."""


def _conjuncts(pred: A.Expr) -> List[A.Expr]:
    if isinstance(pred, A.And):
        return _conjuncts(pred.left) + _conjuncts(pred.right)
    return [pred]


def _conjoin(parts: Sequence[A.Expr]) -> A.Expr:
    if not parts:
        return TRUE
    out = parts[-1]
    for part in reversed(parts[:-1]):
        out = A.And(part, out)
    return out


def _leaf_var(index: int) -> str:
    # '%' cannot appear in user variable names, so tagged references can
    # never be captured by binders inside the conjunct
    return f"%{index}"


#: A plan shape: a leaf index, or a (left, right) pair of shapes.
Shape = Union[int, Tuple["Shape", "Shape"]]


@dataclass
class JoinLeaf:
    """One node of the join graph.

    ``base_expr`` is the operand exactly as it appeared in the original
    tree; ``expr`` is the working form — ``base_expr`` wrapped in a σ once
    pushed-down conjuncts are applied (and with nested join regions inside
    it reordered, once the caller commits to processing this region).
    """

    index: int
    expr: A.Expr
    base_expr: A.Expr
    var: str
    attrs: Optional[FrozenSet[str]]
    label: str


@dataclass(frozen=True)
class JoinEdge:
    """An equality conjunct linking two leaves: ``left.attr = right.attr``."""

    left: int
    left_attr: str
    right: int
    right_attr: str

    @property
    def ends(self) -> FrozenSet[int]:
        return frozenset((self.left, self.right))


@dataclass(frozen=True)
class JoinOrderDecision:
    """What the enumerator decided for one join region, for ``explain()``.

    ``candidates`` lists alternative complete orders (rendered, with their
    estimated cost) considered at the top of the DP table, cheapest first.
    """

    chosen: str
    chosen_cost: float
    original: str
    original_cost: float
    leaves: int
    bushy: bool
    reordered: bool
    candidates: Tuple[Tuple[str, float], ...] = ()

    def render(self) -> str:
        def fmt(x: float) -> str:
            if x >= 100 or x == int(x):
                return str(int(round(x)))
            return f"{x:.1f}"

        line = f"-- join order: {self.chosen} (cost≈{fmt(self.chosen_cost)}"
        if not self.reordered:
            line += "; rewriter order kept"
        else:
            line += f"; rewriter order {self.original} cost≈{fmt(self.original_cost)}"
        if self.candidates:
            shown = ", ".join(
                f"{order}≈{fmt(cost)}" for order, cost in self.candidates[:4]
            )
            line += f"; candidates: {shown}"
        return line + ")"


class JoinGraph:
    """Leaves + equality edges + pushed selections + residual conjuncts."""

    def __init__(self, catalog) -> None:
        self.catalog = catalog
        self.leaves: List[JoinLeaf] = []
        self.edges: List[JoinEdge] = []
        self.residuals: List[Tuple[FrozenSet[int], A.Expr]] = []
        self._pushed: Dict[int, List[A.Expr]] = {}
        self.original: Optional[Shape] = None

    # -- construction --------------------------------------------------------
    def add_leaf(self, expr: A.Expr, var: str) -> int:
        index = len(self.leaves)
        self.leaves.append(
            JoinLeaf(
                index, expr, expr, var, _leaf_attrs(expr, self.catalog), _label(expr)
            )
        )
        return index

    def recurse_leaves(self, rec) -> None:
        """Apply ``rec`` to every leaf's base expression (exactly once per
        leaf — nested join regions inside leaves are reordered here), and
        rewire the working form's pushdown wrapper onto the result."""
        for leaf in self.leaves:
            recursed = rec(leaf.base_expr)
            if recursed is leaf.base_expr:
                continue
            if leaf.expr is leaf.base_expr:
                leaf.expr = recursed
            else:  # the single σ wrapper added by apply_pushed_selections
                leaf.expr = dataclasses.replace(leaf.expr, source=recursed)
            leaf.base_expr = recursed

    def add_conjunct(self, used: FrozenSet[int], tagged: A.Expr) -> None:
        if len(used) == 1:
            self._pushed.setdefault(next(iter(used)), []).append(tagged)
            return
        if len(used) == 2 and isinstance(tagged, A.Compare) and tagged.op == "=":
            sides = []
            for side in (tagged.left, tagged.right):
                if (
                    isinstance(side, A.AttrAccess)
                    and isinstance(side.base, A.Var)
                    and side.base.name.startswith("%")
                ):
                    sides.append((int(side.base.name[1:]), side.attr))
            if len(sides) == 2 and sides[0][0] != sides[1][0]:
                (i, a), (j, b) = sides
                if i > j:
                    (i, a), (j, b) = (j, b), (i, a)
                self.edges.append(JoinEdge(i, a, j, b))
                return
        self.residuals.append((used, tagged))

    def apply_pushed_selections(self) -> None:
        """Fold single-leaf conjuncts into their leaf as σ nodes, so the
        estimator prices the filtered cardinality and the planner can turn
        them into index scans or index-join residuals."""
        for index, parts in self._pushed.items():
            leaf = self.leaves[index]
            pred = _conjoin(
                [_untag(p, {index: leaf.var}) for p in parts]
            )
            leaf.expr = A.Select(leaf.var, pred, leaf.expr)

    # -- structure queries ---------------------------------------------------
    def connects(self, group_a: FrozenSet[int], group_b: FrozenSet[int]) -> bool:
        for edge in self.edges:
            if (edge.left in group_a and edge.right in group_b) or (
                edge.left in group_b and edge.right in group_a
            ):
                return True
        for used, _ in self.residuals:
            if used & group_a and used & group_b and used <= (group_a | group_b):
                return True
        return False

    def components(self) -> List[FrozenSet[int]]:
        parent = list(range(len(self.leaves)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            parent[find(i)] = find(j)

        for edge in self.edges:
            union(edge.left, edge.right)
        for used, _ in self.residuals:
            ids = sorted(used)
            for other in ids[1:]:
                union(ids[0], other)
        groups: Dict[int, Set[int]] = {}
        for i in range(len(self.leaves)):
            groups.setdefault(find(i), set()).add(i)
        return [frozenset(g) for g in groups.values()]


def _label(expr: A.Expr) -> str:
    if isinstance(expr, A.ExtentRef):
        return expr.name
    if isinstance(expr, A.Select):
        inner = _label(expr.source)
        return f"σ({inner})" if not inner.startswith("σ(") else inner
    if isinstance(expr, A.Rename):
        return f"ρ({_label(expr.source)})"
    return f"[{type(expr).__name__}]"


def _leaf_attrs(expr: A.Expr, catalog) -> Optional[FrozenSet[str]]:
    """Top-level attribute names of a leaf, or None when unknowable."""
    if isinstance(expr, A.ExtentRef):
        db = getattr(catalog, "db", None)
        if db is not None and hasattr(db, "extent"):
            try:
                rows = db.extent(expr.name)
            except Exception:
                rows = None
            if rows:
                row = next(iter(rows))
                attrs = getattr(row, "attributes", None)
                if attrs is not None:
                    return frozenset(attrs)
        stats = catalog.stats(expr.name) if catalog is not None else None
        if stats is not None and (stats.distinct or stats.avg_set_size):
            return frozenset(stats.distinct) | frozenset(stats.avg_set_size)
        return None
    if isinstance(expr, A.Select):
        return _leaf_attrs(expr.source, catalog)
    if isinstance(expr, A.Rename):
        base = _leaf_attrs(expr.source, catalog)
        if base is None:
            return None
        renames = dict(expr.renames)
        return frozenset(renames.get(a, a) for a in base)
    return None


# ---------------------------------------------------------------------------
# Conjunct retagging: join variables → per-leaf markers
# ---------------------------------------------------------------------------


def _retag(
    expr: A.Expr,
    owners: Dict[str, Dict[str, int]],
    bound: FrozenSet[str],
    used: Set[int],
) -> A.Expr:
    """Rewrite every free ``var.attr`` access over a join variable into an
    access on the owning leaf's marker variable; bail on anything that
    cannot be attributed to exactly one leaf."""
    if isinstance(expr, A.AttrAccess) and isinstance(expr.base, A.Var):
        name = expr.base.name
        if name not in bound and name in owners:
            leaf = owners[name].get(expr.attr)
            if leaf is None:
                raise _Bail(f"attribute {expr.attr!r} has no unique owning leaf")
            used.add(leaf)
            return A.AttrAccess(A.Var(_leaf_var(leaf)), expr.attr)
    if isinstance(expr, A.Var):
        if expr.name not in bound and expr.name in owners:
            raise _Bail("whole-tuple reference to a join variable")
        return expr
    if isinstance(expr, (A.Map, A.Select)):
        body_field = "body" if isinstance(expr, A.Map) else "pred"
        new_source = _retag(expr.source, owners, bound, used)
        new_body = _retag(getattr(expr, body_field), owners, bound | {expr.var}, used)
        if new_source is expr.source and new_body is getattr(expr, body_field):
            return expr
        return dataclasses.replace(expr, source=new_source, **{body_field: new_body})
    if isinstance(expr, (A.Exists, A.Forall)):
        new_source = _retag(expr.source, owners, bound, used)
        new_pred = _retag(expr.pred, owners, bound | {expr.var}, used)
        if new_source is expr.source and new_pred is expr.pred:
            return expr
        return dataclasses.replace(expr, source=new_source, pred=new_pred)
    if isinstance(expr, (A.Join, A.SemiJoin, A.AntiJoin, A.OuterJoin, A.NestJoin)):
        inner_bound = bound | {expr.lvar, expr.rvar}
        changes: Dict[str, A.Expr] = {}
        for name in ("left", "right"):
            new = _retag(getattr(expr, name), owners, bound, used)
            if new is not getattr(expr, name):
                changes[name] = new
        for name in ("pred",) + (("result",) if isinstance(expr, A.NestJoin) else ()):
            new = _retag(getattr(expr, name), owners, inner_bound, used)
            if new is not getattr(expr, name):
                changes[name] = new
        return dataclasses.replace(expr, **changes) if changes else expr
    return expr.map_children(lambda child: _retag(child, owners, bound, used))


def _untag(expr: A.Expr, mapping: Dict[int, str]) -> A.Expr:
    """Marker variables back to real variables (capture-avoiding)."""
    return substitute(
        expr, {_leaf_var(i): A.Var(name) for i, name in mapping.items()}
    )


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def _owners_of(graph: JoinGraph, ids: FrozenSet[int]) -> Dict[str, int]:
    owners: Dict[str, int] = {}
    clashed: Set[str] = set()
    for i in ids:
        attrs = graph.leaves[i].attrs
        if attrs is None:
            continue
        for attr in attrs:
            if attr in owners:
                clashed.add(attr)
            owners[attr] = i
    for attr in clashed:
        del owners[attr]
    return owners


def _flatten_region(expr: A.Join, graph: JoinGraph) -> Tuple[FrozenSet[int], Shape]:
    left_ids, left_shape = _operand(expr.left, expr.lvar, graph)
    right_ids, right_shape = _operand(expr.right, expr.rvar, graph)
    owners = {
        expr.lvar: _owners_of(graph, left_ids),
        expr.rvar: _owners_of(graph, right_ids),
    }
    for conjunct in _conjuncts(expr.pred):
        if conjunct == TRUE:
            continue
        if not free_vars(conjunct) <= {expr.lvar, expr.rvar}:
            raise _Bail("conjunct references a variable from outside the region")
        used: Set[int] = set()
        tagged = _retag(conjunct, owners, frozenset(), used)
        if not used:
            raise _Bail("constant conjunct")
        graph.add_conjunct(frozenset(used), tagged)
    return left_ids | right_ids, (left_shape, right_shape)


def _operand(expr: A.Expr, var: str, graph: JoinGraph) -> Tuple[FrozenSet[int], Shape]:
    if isinstance(expr, A.Join):
        return _flatten_region(expr, graph)
    index = graph.add_leaf(expr, var)
    return frozenset((index,)), index


def extract_join_graph(expr: A.Join, catalog) -> Optional[JoinGraph]:
    """The join graph of a closed plain-join region, or ``None`` when the
    region cannot be proven safe to reorder.  Extraction has no side
    effects beyond the returned graph — nested regions inside leaves are
    untouched until the caller commits via :meth:`JoinGraph.recurse_leaves`."""
    graph = JoinGraph(catalog)
    try:
        ids, shape = _flatten_region(expr, graph)
    except _Bail:
        return None
    graph.original = shape
    known = [leaf.attrs for leaf in graph.leaves if leaf.attrs is not None]
    seen: Set[str] = set()
    for attrs in known:
        if seen & attrs:
            return None  # shared attribute names: concat order would matter
        seen |= attrs
    graph.apply_pushed_selections()
    return graph


# ---------------------------------------------------------------------------
# DP enumeration
# ---------------------------------------------------------------------------


class _Enumerator:
    def __init__(self, graph: JoinGraph, model: CostModel) -> None:
        self.graph = graph
        self.model = model
        self.est = [model.estimate(leaf.expr) for leaf in graph.leaves]
        self._rows_memo: Dict[FrozenSet[int], float] = {}
        self._edge_sel: Dict[JoinEdge, float] = {}

    # -- scoring -------------------------------------------------------------
    def edge_selectivity(self, edge: JoinEdge) -> float:
        sel = self._edge_sel.get(edge)
        if sel is None:
            estimator = self.model.estimator
            known = [
                nd
                for nd in (
                    estimator.distinct_for(self.est[edge.left], edge.left_attr),
                    estimator.distinct_for(self.est[edge.right], edge.right_attr),
                )
                if nd
            ]
            sel = 1.0 / max(known) if known else EQ_SELECTIVITY
            self._edge_sel[edge] = sel
        return sel

    def rows(self, ids: FrozenSet[int]) -> float:
        memo = self._rows_memo.get(ids)
        if memo is not None:
            return memo
        rows = 1.0
        for i in ids:
            rows *= self.est[i].rows
        for edge in self.graph.edges:
            if edge.ends <= ids:
                rows *= self.edge_selectivity(edge)
        for used, _ in self.graph.residuals:
            if used <= ids:
                rows *= RESIDUAL_SELECTIVITY
        self._rows_memo[ids] = rows
        return rows

    def _estimate_of(self, ids: FrozenSet[int], cost: float) -> Estimate:
        if len(ids) == 1:
            return self.est[next(iter(ids))]
        return Estimate(self.rows(ids), cost)

    def _connecting_edges(
        self, left: FrozenSet[int], right: FrozenSet[int]
    ) -> List[JoinEdge]:
        return [
            e
            for e in self.graph.edges
            if (e.left in left and e.right in right)
            or (e.left in right and e.right in left)
        ]

    def _inlj_cost(
        self, probe: Estimate, right_leaf: int, edges: List[JoinEdge], out_rows: float
    ) -> Optional[float]:
        """Price an index nested-loop join probing ``right_leaf``'s extent,
        mirroring the planner's candidate (a pushed-down selection over the
        indexed extent rides along as a residual)."""
        catalog = self.graph.catalog
        if catalog is None:
            return None
        expr = self.graph.leaves[right_leaf].expr
        filtered = False
        while isinstance(expr, A.Select):
            filtered = True
            expr = expr.source
        if not isinstance(expr, A.ExtentRef):
            return None
        stats = catalog.stats(expr.name)
        for edge in edges:
            attr = edge.right_attr if edge.right == right_leaf else edge.left_attr
            named = catalog.index_on(expr.name, attr)
            if named is None or named.multi:
                continue
            if stats is not None and stats.distinct_count(attr):
                fanout = stats.cardinality / stats.distinct_count(attr)
            else:
                fanout = named.built_cardinality / max(len(named.index), 1)
            fetched = probe.rows * fanout
            cost = self.model.index_nl_join_cost(probe, fetched)
            extra = len(edges) - 1 + (1 if filtered else 0)
            cost += extra * fetched * PREDICATE_COST
            return cost + max(out_rows - fetched, 0.0)
        return None

    def combine_cost(
        self,
        left_ids: FrozenSet[int],
        left_cost: float,
        right_ids: FrozenSet[int],
        right_cost: float,
    ) -> float:
        """Cheapest physical cost of joining two already-priced subplans —
        the same candidate set the planner enumerates per join."""
        out_ids = left_ids | right_ids
        out_rows = self.rows(out_ids)
        left = self._estimate_of(left_ids, left_cost)
        right = self._estimate_of(right_ids, right_cost)
        edges = self._connecting_edges(left_ids, right_ids)
        candidates = [self.model.nested_loop_cost(left, right, out_rows)]
        if edges:
            candidates.append(self.model.hash_join_cost(right, left, out_rows))
            candidates.append(self.model.hash_join_cost(left, right, out_rows))
            if len(right_ids) == 1:
                inlj = self._inlj_cost(left, next(iter(right_ids)), edges, out_rows)
                if inlj is not None:
                    candidates.append(inlj)
        return min(candidates)

    def score_shape(self, shape: Shape) -> Tuple[FrozenSet[int], float]:
        """Cost of a fixed tree shape under the same pricing — used to
        score the rewriter's original order for comparison."""
        if isinstance(shape, int):
            return frozenset((shape,)), self.est[shape].cost
        left_ids, left_cost = self.score_shape(shape[0])
        right_ids, right_cost = self.score_shape(shape[1])
        cost = self.combine_cost(left_ids, left_cost, right_ids, right_cost)
        return left_ids | right_ids, cost

    # -- enumeration ---------------------------------------------------------
    def best_left_deep(
        self, component: FrozenSet[int]
    ) -> Tuple[Shape, float, List[Tuple[Shape, float]]]:
        best: Dict[FrozenSet[int], Tuple[float, Shape]] = {
            frozenset((i,)): (self.est[i].cost, i) for i in component
        }
        ids = sorted(component)
        for size in range(2, len(ids) + 1):
            for subset in combinations(ids, size):
                fs = frozenset(subset)
                entries: List[Tuple[float, Shape]] = []
                for last in subset:
                    rest = fs - {last}
                    entry = best.get(rest)
                    if entry is None:
                        continue
                    if not self.graph.connects(rest, frozenset((last,))):
                        continue
                    rest_cost, rest_shape = entry
                    cost = self.combine_cost(
                        rest, rest_cost, frozenset((last,)), self.est[last].cost
                    )
                    entries.append((cost, (rest_shape, last)))
                if entries:
                    best[fs] = min(entries, key=lambda e: e[0])
        full = best.get(frozenset(component))
        if full is None:
            # no cross-product-free order exists inside a "component" —
            # cannot happen with union-find components, but stay safe
            raise _Bail("component not joinable without cross products")
        # alternatives at the top of the table: best order per final leaf
        alternatives: List[Tuple[Shape, float]] = []
        for last in ids:
            rest = frozenset(component) - {last}
            entry = best.get(rest)
            if entry is None or not self.graph.connects(rest, frozenset((last,))):
                continue
            cost = self.combine_cost(
                rest, entry[0], frozenset((last,)), self.est[last].cost
            )
            alternatives.append(((entry[1], last), cost))
        alternatives.sort(key=lambda e: e[1])
        return full[1], full[0], alternatives

    def best_bushy(self, component: FrozenSet[int]) -> Tuple[Shape, float]:
        best: Dict[FrozenSet[int], Tuple[float, Shape]] = {
            frozenset((i,)): (self.est[i].cost, i) for i in component
        }
        ids = sorted(component)
        for size in range(2, len(ids) + 1):
            for subset in combinations(ids, size):
                fs = frozenset(subset)
                entries: List[Tuple[float, Shape]] = []
                members = sorted(fs)
                anchor = members[0]
                # enumerate splits; anchoring the first member to the left
                # half halves the symmetric enumeration, and both operand
                # orientations are priced explicitly
                rest = [m for m in members if m != anchor]
                for k in range(0, len(rest)):
                    for extra in combinations(rest, k):
                        left_ids = frozenset((anchor,) + extra)
                        right_ids = fs - left_ids
                        if not right_ids:
                            continue
                        left_entry = best.get(left_ids)
                        right_entry = best.get(right_ids)
                        if left_entry is None or right_entry is None:
                            continue
                        if not self.graph.connects(left_ids, right_ids):
                            continue
                        for (a_ids, a_e), (b_ids, b_e) in (
                            ((left_ids, left_entry), (right_ids, right_entry)),
                            ((right_ids, right_entry), (left_ids, left_entry)),
                        ):
                            cost = self.combine_cost(a_ids, a_e[0], b_ids, b_e[0])
                            entries.append((cost, (a_e[1], b_e[1])))
                if entries:
                    best[fs] = min(entries, key=lambda e: e[0])
        full = best.get(frozenset(component))
        if full is None:
            raise _Bail("component not joinable without cross products")
        return full[1], full[0]

    def enumerate(self, bushy: bool) -> Tuple[Shape, float, List[Tuple[Shape, float]]]:
        """The cheapest shape over all leaves: DP per connected component,
        components combined smallest-first with cross joins."""
        parts: List[Tuple[Shape, float]] = []
        alternatives: List[Tuple[Shape, float]] = []
        components = self.graph.components()
        for component in components:
            if len(component) == 1:
                leaf = next(iter(component))
                parts.append((leaf, self.est[leaf].cost))
                continue
            if bushy and len(self.graph.leaves) <= MAX_BUSHY_LEAVES:
                shape, cost = self.best_bushy(component)
                alts: List[Tuple[Shape, float]] = []
            else:
                shape, cost, alts = self.best_left_deep(component)
            parts.append((shape, cost))
            if len(components) == 1:
                alternatives = alts
        parts.sort(key=lambda p: self.rows(_shape_ids(p[0])))
        shape, cost = parts[0]
        for next_shape, next_cost in parts[1:]:
            cost = self.combine_cost(
                _shape_ids(shape), cost, _shape_ids(next_shape), next_cost
            )
            shape = (shape, next_shape)
        return shape, cost, alternatives


def _shape_ids(shape: Shape) -> FrozenSet[int]:
    if isinstance(shape, int):
        return frozenset((shape,))
    return _shape_ids(shape[0]) | _shape_ids(shape[1])


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------


def _render_shape(graph: JoinGraph, shape: Shape, top: bool = True) -> str:
    if isinstance(shape, int):
        return graph.leaves[shape].label
    left = _render_shape(graph, shape[0], top=False)
    right = _render_shape(graph, shape[1], top=False)
    # left-deep chains read naturally without parentheses; parenthesize
    # only a composite right operand (the bushy case)
    if isinstance(shape[1], (tuple,)):
        right = f"({right})"
    text = f"{left} ⋈ {right}"
    return text


def _emit(
    graph: JoinGraph,
    shape: Shape,
    applied: Set[int],
    avoid: Set[str],
) -> Tuple[A.Expr, FrozenSet[int], str]:
    """Rebuild the algebra for a shape; returns (expr, leaf ids, preferred
    variable name for this operand)."""
    if isinstance(shape, int):
        leaf = graph.leaves[shape]
        return leaf.expr, frozenset((shape,)), leaf.var
    left_expr, left_ids, left_pref = _emit(graph, shape[0], applied, avoid)
    right_expr, right_ids, right_pref = _emit(graph, shape[1], applied, avoid)
    lvar = fresh_name(left_pref if isinstance(shape[0], int) else "t", frozenset(avoid))
    avoid.add(lvar)
    rvar = fresh_name(right_pref if isinstance(shape[1], int) else "t", frozenset(avoid))
    avoid.add(rvar)
    ids = left_ids | right_ids
    parts: List[A.Expr] = []
    for edge in graph.edges:
        if edge.left in left_ids and edge.right in right_ids:
            parts.append(
                A.Compare(
                    "=",
                    A.AttrAccess(A.Var(lvar), edge.left_attr),
                    A.AttrAccess(A.Var(rvar), edge.right_attr),
                )
            )
        elif edge.left in right_ids and edge.right in left_ids:
            parts.append(
                A.Compare(
                    "=",
                    A.AttrAccess(A.Var(lvar), edge.right_attr),
                    A.AttrAccess(A.Var(rvar), edge.left_attr),
                )
            )
    for pos, (used, tagged) in enumerate(graph.residuals):
        if pos in applied or not used <= ids:
            continue
        applied.add(pos)
        mapping = {i: (lvar if i in left_ids else rvar) for i in used}
        parts.append(_untag(tagged, mapping))
    return A.Join(left_expr, right_expr, lvar, rvar, _conjoin(parts)), ids, "t"


def emit_shape(graph: JoinGraph, shape: Shape) -> A.Expr:
    avoid: Set[str] = set()
    for leaf in graph.leaves:
        avoid |= all_var_names(leaf.expr)
        avoid.add(leaf.var)
    expr, _, _ = _emit(graph, shape, set(), avoid)
    return expr


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def reorder_joins(
    expr: A.Expr,
    model: CostModel,
    catalog,
    *,
    bushy: bool = False,
) -> Tuple[A.Expr, List[JoinOrderDecision]]:
    """Reorder every eligible plain-join region of ``expr``; returns the
    (possibly) rewritten expression plus one decision record per region."""
    decisions: List[JoinOrderDecision] = []

    def rec(node: A.Expr) -> A.Expr:
        if isinstance(node, A.Join) and not free_vars(node):
            result = _reorder_region(node, model, catalog, bushy, rec)
            if result is not None:
                new_expr, decision = result
                decisions.append(decision)
                return new_expr
        return node.map_children(rec)

    return rec(expr), decisions


def _reorder_region(
    expr: A.Join, model: CostModel, catalog, bushy: bool, rec
) -> Optional[Tuple[A.Expr, JoinOrderDecision]]:
    graph = extract_join_graph(expr, catalog)
    if graph is None:
        return None
    n = len(graph.leaves)
    if n < 3 or n > MAX_DP_LEAVES:
        # ineligible region: returning None lets the caller's generic
        # map_children recursion handle the operands (extraction had no
        # side effects, so nothing runs twice)
        return None
    # commit: reorder nested regions inside the leaves exactly once, so
    # the DP prices the leaves the emitted plan will actually use
    graph.recurse_leaves(rec)
    enumerator = _Enumerator(graph, model)
    try:
        _, original_cost = enumerator.score_shape(graph.original)
        shape, cost, alternatives = enumerator.enumerate(bushy)
    except _Bail:
        return None
    reordered = shape != graph.original and cost < original_cost
    if reordered:
        out = emit_shape(graph, shape)
    else:
        # keep this region's structure and predicates untouched (one
        # decision per region: sub-joins are not re-enumerated), swapping
        # in the already-recursed leaves in lockstep with the original
        # in-order leaf sequence
        leaf_iter = iter(graph.leaves)

        def rebuild(node: A.Expr) -> A.Expr:
            if isinstance(node, A.Join):
                return dataclasses.replace(
                    node,
                    left=rebuild(node.left),
                    right=rebuild(node.right),
                    pred=rec(node.pred),
                )
            return next(leaf_iter).base_expr

        out = rebuild(expr)
        shape, cost = graph.original, original_cost
    decision = JoinOrderDecision(
        chosen=_render_shape(graph, shape),
        chosen_cost=cost,
        original=_render_shape(graph, graph.original),
        original_cost=original_cost,
        leaves=n,
        bushy=bushy,
        reordered=reordered,
        candidates=tuple(
            (_render_shape(graph, s), c) for s, c in alternatives
        ),
    )
    return out, decision
