"""The physical planner: logical ADL → physical plan.

Rewriting a nested query into a join query pays off because "the optimizer
may choose from a number of different join processing strategies"
(Section 5.1).  This planner makes that choice — and, given a
:class:`~repro.storage.catalog.Catalog`, makes it *cost-based*.  Before
physical selection even starts, multi-join regions are re-ordered by the
DP enumeration in :mod:`repro.engine.joinorder` (disable with
``reorder=False``; widen to bushy trees with ``bushy=True``), so the tree
being priced is already the cheapest order the cost model can find.  Then:

* join predicates are decomposed into conjuncts; equality conjuncts whose
  sides depend on one operand each become **hash-join keys**, membership
  conjuncts (``e ∈ set``) become **membership hash joins**, everything
  else stays as a residual filter;
* with a catalog, the planner enumerates physical alternatives per join —
  hash join with **either build side** (plain joins), an **index
  nested-loop join** probing a registered persistent index, and nested
  loops — and keeps the cheapest under the
  :mod:`~repro.engine.cost` model, with cardinalities propagated
  bottom-up from catalog statistics;
* selections over an indexed equality predicate become **index scans**
  when the cost model prefers the probe to the full scan;
* joins with no hashable conjunct fall back to **nested loops** —
  faithfully reproducing the paper's premise that an un-rewritten nested
  query is a nested loop;
* the remaining algebra (σ α π ρ ν μ ⊔ ∪ ∩ − ÷ materialize) maps
  one-to-one onto pipeline operators;
* anything that is not a set-producing operator at the top level (e.g. a
  predicate's interior) is evaluated by the interpreter inside the
  enclosing operator — the tuple-oriented residue.

Without a catalog the planner reproduces the PR-1 heuristics exactly
(hash join whenever an equi conjunct exists, build side on the right), so
existing callers are unaffected.  Under cost-based planning every node is
annotated with estimated rows and cost, rendered by ``explain()``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.adl import ast as A
from repro.adl.freevars import free_vars
from repro.adl.subst import substitute
from repro.engine import plan as P
from repro.engine.cost import CostModel, Estimate, PREDICATE_COST, _bound_attr
from repro.engine.joinorder import JoinOrderDecision, reorder_joins
from repro.engine.plan import ExecRuntime, PlanNode
from repro.engine.stats import Stats

TRUE = A.Literal(True)


def _conjuncts(pred: A.Expr) -> List[A.Expr]:
    if isinstance(pred, A.And):
        return _conjuncts(pred.left) + _conjuncts(pred.right)
    return [pred]


def _conjoin(parts: List[A.Expr]) -> A.Expr:
    if not parts:
        return TRUE
    out = parts[-1]
    for part in reversed(parts[:-1]):
        out = A.And(part, out)
    return out


class JoinRecipe:
    """The decomposition of a join predicate into physical ingredients."""

    def __init__(self, lvar: str, rvar: str, pred: A.Expr) -> None:
        self.equi_left: List[A.Expr] = []
        self.equi_right: List[A.Expr] = []
        self.membership: Optional[Tuple[A.Expr, A.Expr, str]] = None
        residual: List[A.Expr] = []
        for conjunct in _conjuncts(pred):
            if isinstance(conjunct, A.Compare) and conjunct.op == "=":
                sides = self._orient(conjunct.left, conjunct.right, lvar, rvar)
                if sides is not None:
                    self.equi_left.append(sides[0])
                    self.equi_right.append(sides[1])
                    continue
            if (
                self.membership is None
                and isinstance(conjunct, A.SetCompare)
                and conjunct.op == "in"
            ):
                element, container = conjunct.left, conjunct.right
                elem_vars = free_vars(element)
                cont_vars = free_vars(container)
                if elem_vars <= {rvar} and cont_vars <= {lvar} and rvar in elem_vars:
                    self.membership = (element, container, "left-set")
                    continue
                if elem_vars <= {lvar} and cont_vars <= {rvar} and lvar in elem_vars:
                    self.membership = (element, container, "right-set")
                    continue
            residual.append(conjunct)
        self.residual = _conjoin(residual)

    @staticmethod
    def _orient(a: A.Expr, b: A.Expr, lvar: str, rvar: str):
        a_vars, b_vars = free_vars(a), free_vars(b)
        if a_vars <= {lvar} and b_vars <= {rvar} and lvar in a_vars and rvar in b_vars:
            return a, b
        if a_vars <= {rvar} and b_vars <= {lvar} and rvar in a_vars and lvar in b_vars:
            return b, a
        return None

    @property
    def hashable(self) -> bool:
        return bool(self.equi_left) or self.membership is not None

    def residual_with_membership(self) -> A.Expr:
        """The residual including the membership conjunct (used when a
        different physical strategy consumes the equi keys)."""
        if self.membership is None:
            return self.residual
        return _conjoin(
            [A.SetCompare("in", self.membership[0], self.membership[1]), self.residual]
        )


class Planner:
    """Plans closed ADL expressions (no free variables at the top level).

    ``catalog`` enables cost-based planning; without it the PR-1
    heuristics apply unchanged.  Under cost-based planning every maximal
    plain-join region of three or more operands is first re-enumerated by
    the DP join-order search (:mod:`repro.engine.joinorder`) —
    ``reorder=False`` plans the rewriter's order as-is, ``bushy=True``
    widens the search from left-deep chains to bushy trees.  Each region's
    decision is kept in :attr:`last_join_orders` for ``explain()``.
    """

    def __init__(
        self,
        catalog=None,
        *,
        reorder: bool = True,
        bushy: bool = False,
        parallel_workers: int = 0,
        batch_size: Optional[int] = None,
    ) -> None:
        self.catalog = catalog
        #: PR 8: price the per-batch dispatch overhead of batch-at-a-time
        #: execution; ``None`` (tuple mode) keeps cost numbers unchanged
        self.cost_model: Optional[CostModel] = (
            CostModel(catalog, batch_size=batch_size, parallel_workers=parallel_workers)
            if catalog is not None
            else None
        )
        self.reorder = reorder
        self.bushy = bushy
        #: > 1 enables partition-parallel candidates (the cost model still
        #: decides; this is capacity, not a switch)
        self.parallel_workers = parallel_workers
        self.last_join_orders: List[JoinOrderDecision] = []

    def plan(self, expr: A.Expr) -> PlanNode:
        # ``last_join_orders`` is assigned exactly once, after planning
        # (never cleared then refilled), so concurrent planners sharing
        # this instance each observe a complete decision list — last plan
        # wins, matching the "last explain" reading of the attribute
        decisions: List[JoinOrderDecision] = []
        try:
            if self.cost_model is not None and self.reorder:
                expr, decisions = reorder_joins(
                    expr, self.cost_model, self.catalog, bushy=self.bushy
                )
            node = self._plan(expr)
        except BaseException:
            # a failed plan must not leave the previous query's decisions
            # attributed to this one
            self.last_join_orders = []
            raise
        self.last_join_orders = decisions
        return node

    # -- dispatch ------------------------------------------------------------
    def _plan(self, expr: A.Expr) -> PlanNode:
        node = self._dispatch(expr)
        if self.cost_model is not None and node.est_rows is None:
            estimate = self.cost_model.estimate(expr)
            node.est_rows = estimate.rows
            node.est_cost = estimate.cost
        return node

    def _dispatch(self, expr: A.Expr) -> PlanNode:
        if isinstance(expr, A.ExtentRef):
            return P.Scan(expr.name)
        if isinstance(expr, A.Select):
            return self._plan_select(expr)
        if isinstance(expr, A.Map):
            return P.MapOp(expr.var, expr.body, self._plan(expr.source))
        if isinstance(expr, A.Project):
            return P.ProjectOp(expr.attrs, self._plan(expr.source))
        if isinstance(expr, A.Rename):
            return P.RenameOp(expr.renames, self._plan(expr.source))
        if isinstance(expr, A.Unnest):
            return P.UnnestOp(expr.attr, self._plan(expr.source))
        if isinstance(expr, A.Nest):
            return P.NestOp(expr.attrs, expr.as_attr, self._plan(expr.source))
        if isinstance(expr, A.Flatten):
            return P.FlattenOp(self._plan(expr.source))
        if isinstance(expr, A.Union):
            return P.SetOp("union", self._plan(expr.left), self._plan(expr.right))
        if isinstance(expr, A.Intersect):
            return P.SetOp("intersect", self._plan(expr.left), self._plan(expr.right))
        if isinstance(expr, A.Difference):
            return P.SetOp("difference", self._plan(expr.left), self._plan(expr.right))
        if isinstance(expr, A.CartProd):
            return P.CartesianProduct(self._plan(expr.left), self._plan(expr.right))
        if isinstance(expr, A.Division):
            return P.DivisionOp(self._plan(expr.left), self._plan(expr.right))
        if isinstance(expr, A.Materialize):
            return P.MaterializeOp(
                expr.attr, expr.as_attr, expr.class_name, self._plan(expr.source)
            )
        if isinstance(expr, A.Stitch):
            return self._plan_stitch(expr)
        if isinstance(expr, (A.Join, A.SemiJoin, A.AntiJoin, A.OuterJoin, A.NestJoin)):
            return self._plan_join(expr)
        # everything else (literals, set constructors, scalar expressions
        # producing sets through the interpreter) is a leaf
        return P.EvalExpr(expr)

    # -- query shredding (PR 9) ------------------------------------------------
    def _plan_stitch(self, expr: A.Stitch) -> PlanNode:
        """Shredded evaluation: plan the *flat* inner join through the
        full pipeline — cost-based physical selection, index joins, and
        (with worker capacity) the partition-parallel candidates — and
        stitch its output back onto the re-streamed outer subplan."""
        from repro.shred.stitch import StitchNest

        inner = A.Join(expr.left, expr.right, expr.lvar, expr.rvar, expr.pred)
        return StitchNest(
            expr.lvar,
            expr.rvar,
            expr.as_attr,
            expr.result,
            expr.key_attrs,
            self._plan(expr.left),
            self._plan(inner),
        )

    # -- selections ------------------------------------------------------------
    def _plan_select(self, expr: A.Select) -> PlanNode:
        indexed = self._try_index_scan(expr)
        if indexed is not None:
            return indexed
        return P.Filter(expr.var, expr.pred, self._plan(expr.source))

    def _try_index_scan(self, expr: A.Select) -> Optional[PlanNode]:
        """``σ[x : x.a = k ∧ rest](EXTENT)`` → ``Filter(rest, IndexScan)``
        when an index on ``EXTENT.a`` exists and the cost model prefers the
        probe to the full scan."""
        if self.catalog is None or not isinstance(expr.source, A.ExtentRef):
            return None
        extent = expr.source.name
        parts = _conjuncts(expr.pred)
        choice = None
        for index_pos, part in enumerate(parts):
            if not (isinstance(part, A.Compare) and part.op == "="):
                continue
            for attr_side, key_side in ((part.left, part.right), (part.right, part.left)):
                attr = _bound_attr(attr_side, expr.var)
                if attr is None or free_vars(key_side):
                    continue
                named = self.catalog.index_on(extent, attr)
                if named is None or named.multi:
                    continue
                choice = (index_pos, attr, key_side, named)
                break
            if choice is not None:
                break
        if choice is None:
            return None
        index_pos, attr, key_expr, named = choice

        model = self.cost_model
        source_est = model.estimate(expr.source)
        stats = self.catalog.stats(extent)
        distinct = stats.distinct_count(attr) if stats is not None else None
        if not distinct:
            distinct = max(len(named.index), 1)
        matching = source_est.rows / max(distinct, 1)
        remaining = parts[:index_pos] + parts[index_pos + 1 :]
        index_cost = model.index_scan_cost(matching) + len(remaining) * matching * PREDICATE_COST
        scan_cost = model.filter_scan_cost(source_est)
        if index_cost >= scan_cost:
            return None

        node: PlanNode = P.IndexScan(extent, attr, key_expr, named.name)
        node.est_rows = matching
        node.est_cost = model.index_scan_cost(matching)
        if remaining:
            node = P.Filter(expr.var, _conjoin(remaining), node)
        node.est_rows = model.estimate(expr).rows
        node.est_cost = index_cost
        return node

    # -- joins ----------------------------------------------------------------
    def _plan_join(self, expr) -> PlanNode:
        kind = {
            A.Join: "join",
            A.SemiJoin: "semijoin",
            A.AntiJoin: "antijoin",
            A.OuterJoin: "outerjoin",
            A.NestJoin: "nestjoin",
        }[type(expr)]
        as_attr = getattr(expr, "as_attr", None)
        result = getattr(expr, "result", None)
        right_attrs = getattr(expr, "right_attrs", ())
        common = dict(
            as_attr=as_attr, result=result, right_attrs=tuple(right_attrs)
        )

        # correlated operands (free variables beyond the join's own) cannot
        # be hashed once; fall back to tuple-at-a-time evaluation
        if free_vars(expr.right) or free_vars(expr.left):
            return P.NestedLoopJoin(
                kind, expr.lvar, expr.rvar, expr.pred,
                self._plan(expr.left), self._plan(expr.right), **common,
            )

        recipe = JoinRecipe(expr.lvar, expr.rvar, expr.pred)
        if self.cost_model is not None:
            return self._plan_join_cost_based(expr, kind, recipe, common)
        return self._plan_join_heuristic(expr, kind, recipe, common)

    def _plan_join_heuristic(self, expr, kind, recipe, common) -> PlanNode:
        """The PR-1 recipe: hash join when possible, always building right."""
        left = self._plan(expr.left)
        right = self._plan(expr.right)
        if recipe.equi_left:
            return P.HashJoinBase(
                kind,
                expr.lvar,
                expr.rvar,
                tuple(recipe.equi_left),
                tuple(recipe.equi_right),
                # membership conjunct (if any) stays residual when equi keys exist
                recipe.residual_with_membership(),
                left,
                right,
                **common,
            )
        if recipe.membership is not None:
            element, container, probe_side = recipe.membership
            return P.MembershipHashJoin(
                kind,
                expr.lvar,
                expr.rvar,
                element,
                container,
                probe_side,
                recipe.residual,
                left,
                right,
                **common,
            )
        return P.NestedLoopJoin(
            kind, expr.lvar, expr.rvar, expr.pred, left, right, **common,
        )

    def _plan_join_cost_based(self, expr, kind, recipe, common) -> PlanNode:
        """Enumerate physical alternatives and keep the cheapest.

        Candidates, in tie-break preference order: index nested-loop join
        (no build), hash join building right, hash join building left
        (plain joins only), membership hash join, nested loops.
        """
        model = self.cost_model
        left_est = model.estimate(expr.left)
        right_est = model.estimate(expr.right)
        out = model.estimate(expr)
        candidates: List[Tuple[float, object]] = []

        inlj = self._inlj_candidate(expr, kind, recipe, common, left_est)
        if inlj is not None:
            candidates.append(inlj)

        if recipe.equi_left:
            residual = recipe.residual_with_membership()

            def hash_right() -> PlanNode:
                return P.HashJoinBase(
                    kind, expr.lvar, expr.rvar,
                    tuple(recipe.equi_left), tuple(recipe.equi_right),
                    residual, self._plan(expr.left), self._plan(expr.right),
                    **common,
                )

            candidates.append(
                (model.hash_join_cost(right_est, left_est, out.rows), hash_right)
            )
            if kind == "join":

                def hash_left() -> PlanNode:
                    return P.HashJoinBase(
                        kind, expr.lvar, expr.rvar,
                        tuple(recipe.equi_left), tuple(recipe.equi_right),
                        residual, self._plan(expr.left), self._plan(expr.right),
                        build_side="left", **common,
                    )

                candidates.append(
                    (model.hash_join_cost(left_est, right_est, out.rows), hash_left)
                )
        elif recipe.membership is not None:
            element, container, probe_side = recipe.membership

            def membership() -> PlanNode:
                return P.MembershipHashJoin(
                    kind, expr.lvar, expr.rvar, element, container, probe_side,
                    recipe.residual, self._plan(expr.left), self._plan(expr.right),
                    **common,
                )

            candidates.append(
                (model.hash_join_cost(right_est, left_est, out.rows), membership)
            )

        def nested_loop() -> PlanNode:
            return P.NestedLoopJoin(
                kind, expr.lvar, expr.rvar, expr.pred,
                self._plan(expr.left), self._plan(expr.right), **common,
            )

        candidates.append(
            (model.nested_loop_cost(left_est, right_est, out.rows), nested_loop)
        )

        # partition-parallel alternatives enter the same enumeration: the
        # cost model, not a flag, decides when a parallel plan wins (ties
        # keep the earlier — serial — candidate)
        if self.parallel_workers > 1 and kind in ("join", "semijoin") and recipe.equi_left:
            candidates.extend(
                self._parallel_candidates(expr, kind, recipe, left_est, right_est, out)
            )

        cost, builder = min(candidates, key=lambda c: c[0])
        node = builder()
        node.est_rows = out.rows
        node.est_cost = cost
        return node

    def _inlj_candidate(self, expr, kind, recipe, common, left_est: Estimate):
        """An index nested-loop join alternative, when the right operand is
        an indexed extent — bare, or under a pushed-down selection, which
        then rides along as a residual predicate applied after the probe."""
        if self.catalog is None:
            return None
        pushed: Optional[A.Expr] = None
        right = expr.right
        if isinstance(right, A.Select) and isinstance(right.source, A.ExtentRef):
            pushed = (
                right.pred
                if right.var == expr.rvar
                else substitute(right.pred, {right.var: A.Var(expr.rvar)})
            )
            right = right.source
        if not isinstance(right, A.ExtentRef):
            return None
        if not recipe.equi_left:
            return None
        extent = right.name
        pick = None
        for i, right_key in enumerate(recipe.equi_right):
            attr = _bound_attr(right_key, expr.rvar)
            if attr is None:
                continue
            named = self.catalog.index_on(extent, attr)
            if named is None or named.multi:
                continue
            pick = (i, attr, named)
            break
        if pick is None:
            return None
        i, attr, named = pick

        leftover = [
            A.Compare("=", l, r)
            for j, (l, r) in enumerate(zip(recipe.equi_left, recipe.equi_right))
            if j != i
        ]
        # the pushed-down selection filters fetched matches before any
        # other residual work sees them
        pushed_parts = [pushed] if pushed is not None else []
        residual = _conjoin(
            pushed_parts
            + leftover
            + [p for p in [recipe.residual_with_membership()] if p != TRUE]
        )

        model = self.cost_model
        stats = self.catalog.stats(extent)
        if stats is not None and stats.distinct_count(attr):
            matches_per_probe = stats.cardinality / stats.distinct_count(attr)
        else:
            matches_per_probe = named.built_cardinality / max(len(named.index), 1)
        # the index fetches *unfiltered* matches; the pushed selection and
        # leftover conjuncts are then evaluated per fetched pair
        pair_rows = left_est.rows * matches_per_probe
        cost = model.index_nl_join_cost(left_est, pair_rows)
        cost += (len(leftover) + len(pushed_parts)) * pair_rows * PREDICATE_COST

        def build() -> PlanNode:
            return P.IndexNestedLoopJoin(
                kind, expr.lvar, expr.rvar, recipe.equi_left[i],
                extent, attr, named.name, residual, self._plan(expr.left),
                **common,
            )

        return (cost, build)

    # -- partition-parallel candidates (PR 5) --------------------------------
    @staticmethod
    def _fragment_base(operand: A.Expr) -> Optional[str]:
        """The unique base extent of a fragment-shippable operand (a bare
        extent, or *selections* over one), else ``None``.

        Maps are deliberately excluded: a map can rename or recompute
        attributes, so a join key named after the map's output would be
        shard-routed against base-extent rows carrying different
        attributes — a crash at best, silently wrong routing at worst.
        Selections leave attributes untouched, so routing by the join
        attribute against base rows is sound.
        """
        node = operand
        while isinstance(node, A.Select):
            node = node.source
        return node.name if isinstance(node, A.ExtentRef) else None

    def _operand_chain(self, operand: A.Expr, base: PlanNode) -> PlanNode:
        """Rebuild an operand's filter chain over ``base`` — the
        per-partition input description ``explain()`` renders."""
        if isinstance(operand, A.Select):
            return P.Filter(
                operand.var, operand.pred, self._operand_chain(operand.source, base)
            )
        return base

    def _parallel_candidates(
        self, expr, kind, recipe, left_est: Estimate, right_est: Estimate, out: Estimate
    ) -> List[Tuple[float, object]]:
        """Partitioned hash-join alternatives for one join.

        Three strategies, all priced by
        :meth:`~repro.engine.cost.CostModel.parallel_join_cost`:
        partition-wise when the inputs are co-partitioned on a join-key
        pair, broadcast when the left input is partitioned (the right is
        read whole by every fragment), and repartition (shared-scan hash
        filter of both inputs, ``workers``-way) whenever both join keys
        are directly-bound attributes.  ``semijoin`` participates — each
        left tuple lands in exactly one fragment with all of its matches
        co-located, so the union of fragment outputs is exact; the
        remaining join kinds stay serial (a documented simplification).
        """
        import dataclasses

        from repro.shard.fragment import (
            LEFT_PLACEHOLDER,
            RIGHT_PLACEHOLDER,
            ShardRef,
            rebind_extent,
        )
        from repro.shard.nodes import Exchange, PartitionedHashJoin, PartitionedScan

        model = self.cost_model
        workers = self.parallel_workers
        l_ext = self._fragment_base(expr.left)
        r_ext = self._fragment_base(expr.right)
        if l_ext is None or r_ext is None:
            return []
        template = dataclasses.replace(
            expr,
            left=rebind_extent(expr.left, LEFT_PLACEHOLDER),
            right=rebind_extent(expr.right, RIGHT_PLACEHOLDER),
        )
        key_pairs = [
            (_bound_attr(l, expr.lvar), _bound_attr(r, expr.rvar))
            for l, r in zip(recipe.equi_left, recipe.equi_right)
        ]
        lp = self.catalog.partitioning(l_ext)
        rp = self.catalog.partitioning(r_ext)

        def shard_balance(pe) -> Optional[float]:
            """Largest-shard row fraction from the per-shard statistics —
            how the registered partitioning's skew reaches the cost."""
            total = sum(pe.cardinalities)
            return max(pe.cardinalities) / total if total else None

        def candidate(strategy, parts, bindings, left_node_fn, right_node_fn,
                      balance=None):
            cost = model.parallel_join_cost(
                strategy, right_est, left_est, out.rows, parts, workers,
                balance=balance,
            )

            def build() -> PlanNode:
                join = PartitionedHashJoin(
                    kind, expr.lvar, expr.rvar, expr.pred, strategy, parts,
                    template, bindings, left_node_fn(), right_node_fn(),
                )
                join.est_rows = out.rows
                join.est_cost = cost
                gather = Exchange("gather", join, parts)
                return gather

            return (cost, build)

        candidates: List[Tuple[float, object]] = []

        if lp is not None and rp is not None and lp.parts == rp.parts:
            for l_attr, r_attr in key_pairs:
                if l_attr == lp.attr and r_attr == rp.attr and l_attr and r_attr:
                    parts = lp.parts
                    bindings = [
                        {
                            LEFT_PLACEHOLDER: ShardRef(l_ext, lp.attr, parts, i),
                            RIGHT_PLACEHOLDER: ShardRef(r_ext, rp.attr, parts, i),
                        }
                        for i in range(parts)
                    ]
                    balances = [b for b in (shard_balance(lp), shard_balance(rp)) if b]
                    candidates.append(candidate(
                        "partition-wise", parts, bindings,
                        lambda: self._operand_chain(
                            expr.left, self._annotate(
                                PartitionedScan(l_ext, lp.attr, lp.parts), l_ext)),
                        lambda: self._operand_chain(
                            expr.right, self._annotate(
                                PartitionedScan(r_ext, rp.attr, rp.parts), r_ext)),
                        balance=max(balances) if balances else None,
                    ))
                    break

        if lp is not None:
            parts = lp.parts
            bindings = [
                {
                    LEFT_PLACEHOLDER: ShardRef(l_ext, lp.attr, parts, i),
                    RIGHT_PLACEHOLDER: ShardRef(r_ext),
                }
                for i in range(parts)
            ]
            candidates.append(candidate(
                "broadcast", parts, bindings,
                lambda: self._operand_chain(
                    expr.left, self._annotate(
                        PartitionedScan(l_ext, lp.attr, lp.parts), l_ext)),
                lambda: Exchange("broadcast", self._plan(expr.right), parts),
                balance=shard_balance(lp),
            ))

        repart = next(((l, r) for l, r in key_pairs if l and r), None)
        if repart is not None and workers > 1:
            l_attr, r_attr = repart
            bindings = [
                {
                    LEFT_PLACEHOLDER: ShardRef(l_ext, l_attr, workers, i),
                    RIGHT_PLACEHOLDER: ShardRef(r_ext, r_attr, workers, i),
                }
                for i in range(workers)
            ]
            def repart_balance(ext, attr, pe):
                # a stored partitioning on this very attribute measured the
                # real hash spread; otherwise the distinct count bounds it
                # (nd values over the buckets put ≥ 1/nd in the hottest one)
                if pe is not None and pe.attr == attr:
                    return shard_balance(pe)
                nd = model.estimator.distinct_for(ext, attr)
                return 1.0 / nd if nd else None

            shares = [
                share
                for share in (
                    repart_balance(l_ext, l_attr, lp),
                    repart_balance(r_ext, r_attr, rp),
                )
                if share
            ]
            candidates.append(candidate(
                "repartition", workers, bindings,
                lambda: Exchange(
                    "repartition", self._plan(expr.left), workers, key_attr=l_attr),
                lambda: Exchange(
                    "repartition", self._plan(expr.right), workers, key_attr=r_attr),
                balance=max(shares) if shares else None,
            ))
        return candidates

    def _annotate(self, node: PlanNode, extent: str) -> PlanNode:
        """Attach the extent's estimate to a constructed scan node."""
        if self.cost_model is not None:
            est = self.cost_model.estimate(A.ExtentRef(extent))
            node.est_rows = est.rows
            node.est_cost = est.cost
        return node


class Executor:
    """Facade: plan + execute ADL expressions against a database.

    ``materialized`` / ``compile_exprs`` are forwarded to
    :class:`ExecRuntime` — the default is the streaming engine with
    compiled parameter expressions; ``materialized=True,
    compile_exprs=False`` reproduces the pre-streaming engine (the
    benchmark baseline).  ``catalog`` switches the planner to cost-based
    physical selection (with DP join reordering — ``reorder=False``
    plans the rewriter's join order as-is, ``bushy=True`` widens the
    order search to bushy trees) and provides the runtime indexes.
    ``explain()`` prepends one ``-- join order: ...`` header per
    reordered region.
    """

    def __init__(
        self,
        db,
        stats: Optional[Stats] = None,
        *,
        materialized: bool = False,
        compile_exprs: bool = True,
        catalog=None,
        reorder: bool = True,
        bushy: bool = False,
        parallel=None,
        batch_size: Optional[int] = None,
    ) -> None:
        self.db = db
        self.stats = stats if stats is not None else Stats()
        self.catalog = catalog
        #: optional :class:`repro.shard.executor.ParallelExecutor`; its
        #: worker count feeds the planner's parallel candidates and its
        #: pool runs gather fragments (caller owns its lifecycle)
        self.parallel = parallel
        #: rows per columnar chunk (PR 8) — threaded into both the cost
        #: model (per-batch dispatch pricing) and every runtime
        self.batch_size = batch_size
        self.planner = Planner(
            catalog,
            reorder=reorder,
            bushy=bushy,
            parallel_workers=parallel.workers if parallel is not None else 0,
            batch_size=batch_size,
        )
        self.materialized = materialized
        self.compile_exprs = compile_exprs

    def _runtime(self, params=None, trace=None) -> ExecRuntime:
        return ExecRuntime(
            self.db,
            self.stats,
            materialized=self.materialized,
            compile_exprs=self.compile_exprs,
            catalog=self.catalog,
            params=params,
            parallel=self.parallel,
            batch_size=self.batch_size,
            trace=trace,
        )

    def execute(self, expr: A.Expr, params=None):
        plan = self.planner.plan(expr)
        return plan.execute(self._runtime(params))

    def iterate(self, expr: A.Expr, params=None):
        """Stream the query result without materializing it.

        The stream is a *bag*: pipeline operators do not deduplicate, so an
        element may appear more than once (deduplication would require
        buffering everything — exactly what streaming avoids).  Apply
        ``frozenset`` for the set-semantics result, which is what
        :meth:`execute` does.
        """
        plan = self.planner.plan(expr)
        return plan.iterate(self._runtime(params))

    def explain(self, expr: A.Expr) -> str:
        plan = self.planner.plan(expr)
        headers = [d.render() for d in self.planner.last_join_orders]
        return "\n".join(headers + [plan.explain()])

    def explain_analyze(
        self, expr: A.Expr, params=None, *, q_error_threshold: float = 4.0
    ):
        """EXPLAIN ANALYZE: run ``expr`` traced and return an
        :class:`~repro.obs.analyze.AnalyzeResult` whose text is the
        ordinary ``explain()`` tree annotated with per-operator
        ``(est≈N, actual=M, X.Xms)`` plus cross-process fragment spans —
        the same renderer as ``explain()``, driven through its
        ``annotate`` hook."""
        from repro.obs.analyze import AnalyzeResult
        from repro.obs.trace import TraceRecorder

        plan = self.planner.plan(expr)
        headers = [d.render() for d in self.planner.last_join_orders]
        recorder = TraceRecorder(q_error_threshold=q_error_threshold)
        rows = plan.execute(self._runtime(params, trace=recorder))
        return AnalyzeResult(
            rows=rows,
            text=recorder.render(plan, headers),
            trace=recorder.summary(plan),
            misestimates=recorder.misestimates(plan),
        )
