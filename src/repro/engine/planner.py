"""The physical planner: logical ADL → physical plan.

Rewriting a nested query into a join query pays off because "the optimizer
may choose from a number of different join processing strategies"
(Section 5.1).  This planner makes that choice:

* join predicates are decomposed into conjuncts; equality conjuncts whose
  sides depend on one operand each become **hash-join keys**, membership
  conjuncts (``e ∈ set``) become **membership hash joins**, everything
  else stays as a residual filter;
* joins with no hashable conjunct fall back to **nested loops** —
  faithfully reproducing the paper's premise that an un-rewritten nested
  query is a nested loop;
* the remaining algebra (σ α π ρ ν μ ⊔ ∪ ∩ − ÷ materialize) maps
  one-to-one onto pipeline operators;
* anything that is not a set-producing operator at the top level (e.g. a
  predicate's interior) is evaluated by the interpreter inside the
  enclosing operator — the tuple-oriented residue.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.adl import ast as A
from repro.adl.freevars import free_vars
from repro.engine import plan as P
from repro.engine.plan import ExecRuntime, PlanNode
from repro.engine.stats import Stats

TRUE = A.Literal(True)


def _conjuncts(pred: A.Expr) -> List[A.Expr]:
    if isinstance(pred, A.And):
        return _conjuncts(pred.left) + _conjuncts(pred.right)
    return [pred]


def _conjoin(parts: List[A.Expr]) -> A.Expr:
    if not parts:
        return TRUE
    out = parts[-1]
    for part in reversed(parts[:-1]):
        out = A.And(part, out)
    return out


class JoinRecipe:
    """The decomposition of a join predicate into physical ingredients."""

    def __init__(self, lvar: str, rvar: str, pred: A.Expr) -> None:
        self.equi_left: List[A.Expr] = []
        self.equi_right: List[A.Expr] = []
        self.membership: Optional[Tuple[A.Expr, A.Expr, str]] = None
        residual: List[A.Expr] = []
        for conjunct in _conjuncts(pred):
            if isinstance(conjunct, A.Compare) and conjunct.op == "=":
                sides = self._orient(conjunct.left, conjunct.right, lvar, rvar)
                if sides is not None:
                    self.equi_left.append(sides[0])
                    self.equi_right.append(sides[1])
                    continue
            if (
                self.membership is None
                and isinstance(conjunct, A.SetCompare)
                and conjunct.op == "in"
            ):
                element, container = conjunct.left, conjunct.right
                elem_vars = free_vars(element)
                cont_vars = free_vars(container)
                if elem_vars <= {rvar} and cont_vars <= {lvar} and rvar in elem_vars:
                    self.membership = (element, container, "left-set")
                    continue
                if elem_vars <= {lvar} and cont_vars <= {rvar} and lvar in elem_vars:
                    self.membership = (element, container, "right-set")
                    continue
            residual.append(conjunct)
        self.residual = _conjoin(residual)

    @staticmethod
    def _orient(a: A.Expr, b: A.Expr, lvar: str, rvar: str):
        a_vars, b_vars = free_vars(a), free_vars(b)
        if a_vars <= {lvar} and b_vars <= {rvar} and lvar in a_vars and rvar in b_vars:
            return a, b
        if a_vars <= {rvar} and b_vars <= {lvar} and rvar in a_vars and lvar in b_vars:
            return b, a
        return None

    @property
    def hashable(self) -> bool:
        return bool(self.equi_left) or self.membership is not None


class Planner:
    """Plans closed ADL expressions (no free variables at the top level)."""

    def plan(self, expr: A.Expr) -> PlanNode:
        return self._plan(expr)

    # -- dispatch ------------------------------------------------------------
    def _plan(self, expr: A.Expr) -> PlanNode:
        if isinstance(expr, A.ExtentRef):
            return P.Scan(expr.name)
        if isinstance(expr, A.Select):
            return P.Filter(expr.var, expr.pred, self._plan(expr.source))
        if isinstance(expr, A.Map):
            return P.MapOp(expr.var, expr.body, self._plan(expr.source))
        if isinstance(expr, A.Project):
            return P.ProjectOp(expr.attrs, self._plan(expr.source))
        if isinstance(expr, A.Rename):
            return P.RenameOp(expr.renames, self._plan(expr.source))
        if isinstance(expr, A.Unnest):
            return P.UnnestOp(expr.attr, self._plan(expr.source))
        if isinstance(expr, A.Nest):
            return P.NestOp(expr.attrs, expr.as_attr, self._plan(expr.source))
        if isinstance(expr, A.Flatten):
            return P.FlattenOp(self._plan(expr.source))
        if isinstance(expr, A.Union):
            return P.SetOp("union", self._plan(expr.left), self._plan(expr.right))
        if isinstance(expr, A.Intersect):
            return P.SetOp("intersect", self._plan(expr.left), self._plan(expr.right))
        if isinstance(expr, A.Difference):
            return P.SetOp("difference", self._plan(expr.left), self._plan(expr.right))
        if isinstance(expr, A.CartProd):
            return P.CartesianProduct(self._plan(expr.left), self._plan(expr.right))
        if isinstance(expr, A.Division):
            return P.DivisionOp(self._plan(expr.left), self._plan(expr.right))
        if isinstance(expr, A.Materialize):
            return P.MaterializeOp(
                expr.attr, expr.as_attr, expr.class_name, self._plan(expr.source)
            )
        if isinstance(expr, (A.Join, A.SemiJoin, A.AntiJoin, A.OuterJoin, A.NestJoin)):
            return self._plan_join(expr)
        # everything else (literals, set constructors, scalar expressions
        # producing sets through the interpreter) is a leaf
        return P.EvalExpr(expr)

    # -- joins ----------------------------------------------------------------
    def _plan_join(self, expr) -> PlanNode:
        kind = {
            A.Join: "join",
            A.SemiJoin: "semijoin",
            A.AntiJoin: "antijoin",
            A.OuterJoin: "outerjoin",
            A.NestJoin: "nestjoin",
        }[type(expr)]
        as_attr = getattr(expr, "as_attr", None)
        result = getattr(expr, "result", None)
        right_attrs = getattr(expr, "right_attrs", ())
        left = self._plan(expr.left)
        right = self._plan(expr.right)

        # correlated operands (free variables beyond the join's own) cannot
        # be hashed once; fall back to tuple-at-a-time evaluation
        if free_vars(expr.right) or free_vars(expr.left):
            return P.NestedLoopJoin(
                kind, expr.lvar, expr.rvar, expr.pred, left, right,
                as_attr=as_attr, result=result, right_attrs=tuple(right_attrs),
            )

        recipe = JoinRecipe(expr.lvar, expr.rvar, expr.pred)
        if recipe.equi_left:
            return P.HashJoinBase(
                kind,
                expr.lvar,
                expr.rvar,
                tuple(recipe.equi_left),
                tuple(recipe.equi_right),
                # membership conjunct (if any) stays residual when equi keys exist
                recipe.residual
                if recipe.membership is None
                else _conjoin(
                    [A.SetCompare("in", recipe.membership[0], recipe.membership[1]),
                     recipe.residual]
                ),
                left,
                right,
                as_attr=as_attr,
                result=result,
                right_attrs=tuple(right_attrs),
            )
        if recipe.membership is not None:
            element, container, probe_side = recipe.membership
            return P.MembershipHashJoin(
                kind,
                expr.lvar,
                expr.rvar,
                element,
                container,
                probe_side,
                recipe.residual,
                left,
                right,
                as_attr=as_attr,
                result=result,
                right_attrs=tuple(right_attrs),
            )
        return P.NestedLoopJoin(
            kind, expr.lvar, expr.rvar, expr.pred, left, right,
            as_attr=as_attr, result=result, right_attrs=tuple(right_attrs),
        )


class Executor:
    """Facade: plan + execute ADL expressions against a database.

    ``materialized`` / ``compile_exprs`` are forwarded to
    :class:`ExecRuntime` — the default is the streaming engine with
    compiled parameter expressions; ``materialized=True,
    compile_exprs=False`` reproduces the pre-streaming engine (the
    benchmark baseline).
    """

    def __init__(
        self,
        db,
        stats: Optional[Stats] = None,
        *,
        materialized: bool = False,
        compile_exprs: bool = True,
    ) -> None:
        self.db = db
        self.stats = stats if stats is not None else Stats()
        self.planner = Planner()
        self.materialized = materialized
        self.compile_exprs = compile_exprs

    def _runtime(self) -> ExecRuntime:
        return ExecRuntime(
            self.db,
            self.stats,
            materialized=self.materialized,
            compile_exprs=self.compile_exprs,
        )

    def execute(self, expr: A.Expr):
        plan = self.planner.plan(expr)
        return plan.execute(self._runtime())

    def iterate(self, expr: A.Expr):
        """Stream the query result without materializing it.

        The stream is a *bag*: pipeline operators do not deduplicate, so an
        element may appear more than once (deduplication would require
        buffering everything — exactly what streaming avoids).  Apply
        ``frozenset`` for the set-semantics result, which is what
        :meth:`execute` does.
        """
        plan = self.planner.plan(expr)
        return plan.iterate(self._runtime())

    def explain(self, expr: A.Expr) -> str:
        return self.planner.plan(expr).explain()
