"""Nestjoin implementations — "common join implementation methods like the
sort-merge join, or the hash join can be adapted" (Section 6.1).

:class:`~repro.engine.plan.HashJoinBase` provides the hash adaptation and
:class:`~repro.engine.plan.NestedLoopJoin` the naive one; this module adds
the **sort-merge adaptation**: sort both operands on the equi-key, sweep
merge, and — the nestjoin twist — emit every left tuple exactly once with
the set of function images of its matching right block (dangling left
tuples get the empty set, preserving Definition 1's guarantee).
"""

from __future__ import annotations

from typing import Dict

from repro.adl import ast as A
from repro.datamodel.values import Value, VTuple, sort_key
from repro.engine.plan import ExecRuntime, PlanNode


class SortMergeNestJoin(PlanNode):
    """Single-key sort-merge nestjoin.

    ``left_key`` / ``right_key`` are expressions over ``lvar`` / ``rvar``;
    ``result`` is the nestjoin's function parameter applied to each
    matching pair; a non-trivial ``residual`` filters pairs before
    grouping.
    """

    label = "SortMergeNestJoin"
    break_note = "sorts both inputs"

    def __init__(
        self,
        lvar: str,
        rvar: str,
        left_key: A.Expr,
        right_key: A.Expr,
        residual: A.Expr,
        left: PlanNode,
        right: PlanNode,
        as_attr: str,
        result: A.Expr,
    ) -> None:
        self.lvar = lvar
        self.rvar = rvar
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual
        self.left = left
        self.right = right
        self.as_attr = as_attr
        self.result = result

    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        from repro.adl.pretty import pretty

        return f"{pretty(self.left_key)} = {pretty(self.right_key)} ; {self.as_attr}"

    def iterate(self, rt: ExecRuntime):
        env: Dict[str, Value] = {}

        def keyed(node, var, key_expr):
            key_fn = rt.compiled(key_expr)
            pairs = []
            for row in self._consume(node, rt):
                env[var] = row
                key = key_fn(env)
                rt.stats.comparisons += 1
                pairs.append((sort_key(key), row))
            pairs.sort(key=lambda kv: kv[0])
            return pairs

        left = keyed(self.left, self.lvar, self.left_key)
        right = keyed(self.right, self.rvar, self.right_key)
        trivial_residual = self.residual == A.Literal(True)
        residual = None if trivial_residual else rt.compiled_pred(self.residual)
        result = rt.compiled(self.result)

        j = 0
        n_right = len(right)
        i = 0
        while i < len(left):
            key = left[i][0]
            # advance the right cursor to the first key >= left key
            while j < n_right and right[j][0] < key:
                j += 1
            # the matching right block [j, j_end)
            j_end = j
            while j_end < n_right and right[j_end][0] == key:
                j_end += 1
            # every left tuple in this key block gets the same raw block,
            # but residuals/results are per-pair
            i_end = i
            while i_end < len(left) and left[i_end][0] == key:
                i_end += 1
            for ii in range(i, i_end):
                x = left[ii][1]
                rt.stats.tuples_visited += 1
                env[self.lvar] = x
                group = set()
                for jj in range(j, j_end):
                    env[self.rvar] = right[jj][1]
                    rt.stats.comparisons += 1
                    if residual is None or residual(env):
                        group.add(result(env))
                rt.stats.output_tuples += 1
                yield x.update_except({self.as_attr: frozenset(group)})
            i = i_end
