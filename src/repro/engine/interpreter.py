"""The reference interpreter for ADL: direct, tuple-oriented evaluation.

This interpreter *defines* the semantics of the algebra in this
reproduction.  Every operator is evaluated exactly as Section 3 writes it —
iterators loop over their operand sets one tuple at a time, quantifiers
short-circuit, joins are nested loops.  That makes it simultaneously:

* the *baseline* the paper argues against (naive nested-loop processing of
  nested queries), with instrumentation showing the quadratic blow-up; and
* the *oracle* the optimized physical operators and every rewrite rule are
  checked against for extensional equality.

Environments map variable names to values.  The database supplies extents
(``db.extent(name)``) and pointer dereference (``db.deref(oid)``) — the
latter powers implicit path expressions like ``d.supplier.sname``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.adl import ast as A
from repro.datamodel.errors import EvaluationError, UnboundParameterError, UnboundVariableError
from repro.datamodel.values import Oid, Value, VTuple, concat
from repro.engine.stats import Stats


class Interpreter:
    """Evaluates ADL expressions against a database.

    ``stats`` is optional; when given, it accumulates the tuple-oriented
    work counters described in :mod:`repro.engine.stats`.  ``params`` maps
    prepared-statement parameter names to their values for this
    evaluation; :class:`~repro.adl.ast.Param` nodes resolve against it
    (they are *not* environment variables — no iterator binds them).
    """

    def __init__(
        self,
        db,
        stats: Optional[Stats] = None,
        params: Optional[Mapping[str, Value]] = None,
    ) -> None:
        self.db = db
        self.stats = stats if stats is not None else Stats()
        self.params: Mapping[str, Value] = params if params is not None else {}

    # -- public API ---------------------------------------------------------
    def eval(self, expr: A.Expr, env: Optional[Mapping[str, Value]] = None) -> Value:
        return self._eval(expr, dict(env or {}))

    # -- internals ----------------------------------------------------------
    def _set(self, expr: A.Expr, env: Dict[str, Value], what: str) -> frozenset:
        value = self._eval(expr, env)
        if not isinstance(value, frozenset):
            raise EvaluationError(f"{what} must evaluate to a set, got {value!r}")
        return value

    def _tuple(self, value: Value, what: str) -> VTuple:
        if not isinstance(value, VTuple):
            raise EvaluationError(f"{what} must be a tuple, got {value!r}")
        return value

    def _deref(self, value: Value) -> Value:
        if isinstance(value, Oid):
            self.stats.oid_derefs += 1
            return self.db.deref(value)
        return value

    def _eval(self, expr: A.Expr, env: Dict[str, Value]) -> Value:
        method = _DISPATCH.get(type(expr))
        if method is None:
            raise EvaluationError(f"no evaluation rule for {type(expr).__name__}")
        return method(self, expr, env)

    # -- atoms ---------------------------------------------------------------
    def _eval_literal(self, expr: A.Literal, env: Dict[str, Value]) -> Value:
        return expr.value

    def _eval_var(self, expr: A.Var, env: Dict[str, Value]) -> Value:
        try:
            return env[expr.name]
        except KeyError:
            raise UnboundVariableError(expr.name) from None

    def _eval_extent(self, expr: A.ExtentRef, env: Dict[str, Value]) -> Value:
        return self.db.extent(expr.name)

    def _eval_param(self, expr: A.Param, env: Dict[str, Value]) -> Value:
        try:
            return self.params[expr.name]
        except KeyError:
            raise UnboundParameterError(expr.name) from None

    # -- tuple operators --------------------------------------------------------
    def _eval_attr(self, expr: A.AttrAccess, env: Dict[str, Value]) -> Value:
        base = self._deref(self._eval(expr.base, env))
        return self._tuple(base, f"operand of .{expr.attr}")[expr.attr]

    def _eval_tuple(self, expr: A.TupleExpr, env: Dict[str, Value]) -> Value:
        return VTuple({n: self._eval(e, env) for n, e in expr.fields})

    def _eval_setexpr(self, expr: A.SetExpr, env: Dict[str, Value]) -> Value:
        return frozenset(self._eval(e, env) for e in expr.elements)

    def _eval_subscript(self, expr: A.TupleSubscript, env: Dict[str, Value]) -> Value:
        base = self._tuple(self._deref(self._eval(expr.base, env)), "subscript operand")
        return base.subscript(expr.attrs)

    def _eval_update(self, expr: A.TupleUpdate, env: Dict[str, Value]) -> Value:
        base = self._tuple(self._deref(self._eval(expr.base, env)), "'except' operand")
        return base.update_except({n: self._eval(e, env) for n, e in expr.updates})

    def _eval_concat(self, expr: A.Concat, env: Dict[str, Value]) -> Value:
        left = self._tuple(self._eval(expr.left, env), "concat operand")
        right = self._tuple(self._eval(expr.right, env), "concat operand")
        return concat(left, right)

    # -- scalar operators ----------------------------------------------------------
    def _eval_arith(self, expr: A.Arith, env: Dict[str, Value]) -> Value:
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        for v in (left, right):
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                raise EvaluationError(f"arithmetic on non-number {v!r}")
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            if right == 0:
                raise EvaluationError("division by zero")
            return left / right
        if expr.op == "mod":
            if right == 0:
                raise EvaluationError("modulo by zero")
            return left % right
        raise EvaluationError(f"unknown arithmetic operator {expr.op!r}")

    def _eval_neg(self, expr: A.Neg, env: Dict[str, Value]) -> Value:
        value = self._eval(expr.operand, env)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise EvaluationError(f"negation of non-number {value!r}")
        return -value

    def _eval_compare(self, expr: A.Compare, env: Dict[str, Value]) -> Value:
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        self.stats.comparisons += 1
        if expr.op == "=":
            return left == right
        if expr.op == "!=":
            return left != right
        for v in (left, right):
            if isinstance(v, bool) or not isinstance(v, (int, float, str)):
                raise EvaluationError(f"ordered comparison on {v!r}")
        if isinstance(left, str) != isinstance(right, str):
            raise EvaluationError(f"ordered comparison across types: {left!r} vs {right!r}")
        if expr.op == "<":
            return left < right
        if expr.op == "<=":
            return left <= right
        if expr.op == ">":
            return left > right
        if expr.op == ">=":
            return left >= right
        raise EvaluationError(f"unknown comparison {expr.op!r}")

    def _eval_setcompare(self, expr: A.SetCompare, env: Dict[str, Value]) -> Value:
        op = expr.op
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        self.stats.comparisons += 1
        if op in ("in", "notin"):
            if not isinstance(right, frozenset):
                raise EvaluationError(f"∈ right operand must be a set, got {right!r}")
            return (left in right) if op == "in" else (left not in right)
        if op in ("ni", "notni"):
            if not isinstance(left, frozenset):
                raise EvaluationError(f"∋ left operand must be a set, got {left!r}")
            return (right in left) if op == "ni" else (right not in left)
        if not isinstance(left, frozenset) or not isinstance(right, frozenset):
            raise EvaluationError(f"set comparison {op} on non-sets: {left!r}, {right!r}")
        if op == "subset":
            return left < right
        if op == "subseteq":
            return left <= right
        if op == "seteq":
            return left == right
        if op == "setneq":
            return left != right
        if op == "supseteq":
            return left >= right
        if op == "supset":
            return left > right
        if op == "disjoint":
            return not (left & right)
        raise EvaluationError(f"unknown set comparison {op!r}")

    # -- boolean ----------------------------------------------------------------------
    def _eval_and(self, expr: A.And, env: Dict[str, Value]) -> Value:
        return self._bool(expr.left, env) and self._bool(expr.right, env)

    def _eval_or(self, expr: A.Or, env: Dict[str, Value]) -> Value:
        return self._bool(expr.left, env) or self._bool(expr.right, env)

    def _eval_not(self, expr: A.Not, env: Dict[str, Value]) -> Value:
        return not self._bool(expr.operand, env)

    def _eval_isempty(self, expr: A.IsEmpty, env: Dict[str, Value]) -> Value:
        return not self._set(expr.operand, env, "emptiness test operand")

    def _bool(self, expr: A.Expr, env: Dict[str, Value]) -> bool:
        value = self._eval(expr, env)
        if not isinstance(value, bool):
            raise EvaluationError(f"expected boolean, got {value!r} from {expr}")
        return value

    # -- quantifiers ---------------------------------------------------------------------
    def _eval_exists(self, expr: A.Exists, env: Dict[str, Value]) -> Value:
        source = self._set(expr.source, env, "∃ range")
        inner = dict(env)
        for item in source:
            self.stats.tuples_visited += 1
            inner[expr.var] = item
            self.stats.predicate_evals += 1
            if self._bool(expr.pred, inner):
                return True
        return False

    def _eval_forall(self, expr: A.Forall, env: Dict[str, Value]) -> Value:
        source = self._set(expr.source, env, "∀ range")
        inner = dict(env)
        for item in source:
            self.stats.tuples_visited += 1
            inner[expr.var] = item
            self.stats.predicate_evals += 1
            if not self._bool(expr.pred, inner):
                return False
        return True

    # -- iterators -------------------------------------------------------------------------
    def _eval_map(self, expr: A.Map, env: Dict[str, Value]) -> Value:
        source = self._set(expr.source, env, "map operand")
        inner = dict(env)
        out = set()
        for item in source:
            self.stats.tuples_visited += 1
            inner[expr.var] = item
            out.add(self._eval(expr.body, inner))
        self.stats.output_tuples += len(out)
        return frozenset(out)

    def _eval_select(self, expr: A.Select, env: Dict[str, Value]) -> Value:
        source = self._set(expr.source, env, "selection operand")
        inner = dict(env)
        out = set()
        for item in source:
            self.stats.tuples_visited += 1
            inner[expr.var] = item
            self.stats.predicate_evals += 1
            if self._bool(expr.pred, inner):
                out.add(item)
        self.stats.output_tuples += len(out)
        return frozenset(out)

    def _eval_project(self, expr: A.Project, env: Dict[str, Value]) -> Value:
        source = self._set(expr.source, env, "projection operand")
        out = set()
        for item in source:
            self.stats.tuples_visited += 1
            out.add(self._tuple(item, "projection element").subscript(expr.attrs))
        return frozenset(out)

    def _eval_rename(self, expr: A.Rename, env: Dict[str, Value]) -> Value:
        source = self._set(expr.source, env, "rename operand")
        out = set()
        for item in source:
            record = self._tuple(item, "rename element")
            fields = dict(record)
            for old, new in expr.renames:
                if old not in fields:
                    raise EvaluationError(f"rename of missing attribute {old!r}")
                fields[new] = fields.pop(old)
            out.add(VTuple(fields))
        return frozenset(out)

    # -- restructuring ------------------------------------------------------------------------
    def _eval_flatten(self, expr: A.Flatten, env: Dict[str, Value]) -> Value:
        source = self._set(expr.source, env, "flatten operand")
        out = set()
        for member in source:
            if not isinstance(member, frozenset):
                raise EvaluationError(f"flatten element is not a set: {member!r}")
            out |= member
        return frozenset(out)

    def _eval_unnest(self, expr: A.Unnest, env: Dict[str, Value]) -> Value:
        source = self._set(expr.source, env, "unnest operand")
        out = set()
        for item in source:
            record = self._tuple(item, "unnest element")
            inner_set = record[expr.attr]
            if not isinstance(inner_set, frozenset):
                raise EvaluationError(f"unnest attribute {expr.attr!r} is not a set")
            rest = record.drop((expr.attr,))
            for member in inner_set:
                self.stats.tuples_visited += 1
                out.add(concat(self._tuple(member, "unnest member"), rest))
        return frozenset(out)

    def _eval_nest(self, expr: A.Nest, env: Dict[str, Value]) -> Value:
        source = self._set(expr.source, env, "nest operand")
        groups: Dict[VTuple, set] = {}
        for item in source:
            record = self._tuple(item, "nest element")
            key = record.drop(expr.attrs)
            groups.setdefault(key, set()).add(record.subscript(expr.attrs))
            self.stats.tuples_visited += 1
        out = set()
        for key, grouped in groups.items():
            out.add(key.update_except({expr.as_attr: frozenset(grouped)}))
        return frozenset(out)

    # -- products and joins -----------------------------------------------------------------------
    def _eval_cart(self, expr: A.CartProd, env: Dict[str, Value]) -> Value:
        left = self._set(expr.left, env, "product operand")
        right = self._set(expr.right, env, "product operand")
        out = set()
        for x1 in left:
            for x2 in right:
                self.stats.tuples_visited += 1
                out.add(concat(self._tuple(x1, "product element"), self._tuple(x2, "product element")))
        return frozenset(out)

    def _join_env(self, expr, env: Dict[str, Value]) -> Dict[str, Value]:
        return dict(env)

    def _eval_join(self, expr: A.Join, env: Dict[str, Value]) -> Value:
        left = self._set(expr.left, env, "join operand")
        right = self._set(expr.right, env, "join operand")
        inner = self._join_env(expr, env)
        out = set()
        for x1 in left:
            for x2 in right:
                self.stats.tuples_visited += 1
                inner[expr.lvar] = x1
                inner[expr.rvar] = x2
                self.stats.predicate_evals += 1
                if self._bool(expr.pred, inner):
                    out.add(concat(self._tuple(x1, "join element"), self._tuple(x2, "join element")))
        self.stats.output_tuples += len(out)
        return frozenset(out)

    def _eval_semijoin(self, expr: A.SemiJoin, env: Dict[str, Value]) -> Value:
        left = self._set(expr.left, env, "semijoin operand")
        right = self._set(expr.right, env, "semijoin operand")
        inner = self._join_env(expr, env)
        out = set()
        for x1 in left:
            inner[expr.lvar] = x1
            for x2 in right:
                self.stats.tuples_visited += 1
                inner[expr.rvar] = x2
                self.stats.predicate_evals += 1
                if self._bool(expr.pred, inner):
                    out.add(x1)
                    break
        self.stats.output_tuples += len(out)
        return frozenset(out)

    def _eval_antijoin(self, expr: A.AntiJoin, env: Dict[str, Value]) -> Value:
        left = self._set(expr.left, env, "antijoin operand")
        right = self._set(expr.right, env, "antijoin operand")
        inner = self._join_env(expr, env)
        out = set()
        for x1 in left:
            inner[expr.lvar] = x1
            matched = False
            for x2 in right:
                self.stats.tuples_visited += 1
                inner[expr.rvar] = x2
                self.stats.predicate_evals += 1
                if self._bool(expr.pred, inner):
                    matched = True
                    break
            if not matched:
                out.add(x1)
        self.stats.output_tuples += len(out)
        return frozenset(out)

    def _eval_outerjoin(self, expr: A.OuterJoin, env: Dict[str, Value]) -> Value:
        left = self._set(expr.left, env, "outerjoin operand")
        right = self._set(expr.right, env, "outerjoin operand")
        inner = self._join_env(expr, env)
        null_pad = VTuple({a: None for a in expr.right_attrs})
        out = set()
        for x1 in left:
            inner[expr.lvar] = x1
            matched = False
            for x2 in right:
                self.stats.tuples_visited += 1
                inner[expr.rvar] = x2
                self.stats.predicate_evals += 1
                if self._bool(expr.pred, inner):
                    matched = True
                    out.add(concat(self._tuple(x1, "join element"), self._tuple(x2, "join element")))
            if not matched:
                out.add(concat(self._tuple(x1, "join element"), null_pad))
        self.stats.output_tuples += len(out)
        return frozenset(out)

    def _eval_nestjoin(self, expr: A.NestJoin, env: Dict[str, Value]) -> Value:
        left = self._set(expr.left, env, "nestjoin operand")
        right = self._set(expr.right, env, "nestjoin operand")
        inner = self._join_env(expr, env)
        out = set()
        for x1 in left:
            inner[expr.lvar] = x1
            group = set()
            for x2 in right:
                self.stats.tuples_visited += 1
                inner[expr.rvar] = x2
                self.stats.predicate_evals += 1
                if self._bool(expr.pred, inner):
                    group.add(self._eval(expr.result, inner))
            record = self._tuple(x1, "nestjoin element")
            out.add(record.update_except({expr.as_attr: frozenset(group)}))
        self.stats.output_tuples += len(out)
        return frozenset(out)

    def _eval_stitch(self, expr: A.Stitch, env: Dict[str, Value]) -> Value:
        # reference semantics: a stitch *is* a nestjoin — ``key_attrs``
        # only licenses the flat physical strategy, it changes nothing
        # about the result
        left = self._set(expr.left, env, "stitch operand")
        right = self._set(expr.right, env, "stitch operand")
        inner = self._join_env(expr, env)
        out = set()
        for x1 in left:
            inner[expr.lvar] = x1
            group = set()
            for x2 in right:
                self.stats.tuples_visited += 1
                inner[expr.rvar] = x2
                self.stats.predicate_evals += 1
                if self._bool(expr.pred, inner):
                    group.add(self._eval(expr.result, inner))
            record = self._tuple(x1, "stitch element")
            out.add(record.update_except({expr.as_attr: frozenset(group)}))
        self.stats.output_tuples += len(out)
        return frozenset(out)

    def _eval_division(self, expr: A.Division, env: Dict[str, Value]) -> Value:
        left = self._set(expr.left, env, "division dividend")
        right = self._set(expr.right, env, "division divisor")
        if not left:
            return frozenset()
        divisor_attrs = None
        for y in right:
            divisor_attrs = self._tuple(y, "divisor element").attributes
            break
        groups: Dict[VTuple, set] = {}
        for item in left:
            record = self._tuple(item, "dividend element")
            if divisor_attrs is None:
                # dividing by the empty set keeps every quotient candidate
                groups.setdefault(record, set())
                continue
            key = record.drop(divisor_attrs)
            groups.setdefault(key, set()).add(record.subscript(divisor_attrs))
            self.stats.tuples_visited += 1
        if divisor_attrs is None:
            return frozenset(groups)
        return frozenset(key for key, seen in groups.items() if seen >= right)

    # -- set algebra -----------------------------------------------------------------------------------
    def _eval_union(self, expr: A.Union, env: Dict[str, Value]) -> Value:
        return self._set(expr.left, env, "union operand") | self._set(expr.right, env, "union operand")

    def _eval_intersect(self, expr: A.Intersect, env: Dict[str, Value]) -> Value:
        return self._set(expr.left, env, "intersect operand") & self._set(
            expr.right, env, "intersect operand"
        )

    def _eval_difference(self, expr: A.Difference, env: Dict[str, Value]) -> Value:
        return self._set(expr.left, env, "difference operand") - self._set(
            expr.right, env, "difference operand"
        )

    # -- aggregates ---------------------------------------------------------------------------------------
    def _eval_aggregate(self, expr: A.Aggregate, env: Dict[str, Value]) -> Value:
        source = self._set(expr.source, env, "aggregate operand")
        if expr.func == "count":
            return len(source)
        if not source:
            if expr.func == "sum":
                return 0
            raise EvaluationError(f"{expr.func} over an empty set")
        values = list(source)
        for v in values:
            if isinstance(v, bool) or not isinstance(v, (int, float, str)):
                raise EvaluationError(f"aggregate {expr.func} over non-atom {v!r}")
        if expr.func == "sum":
            return sum(values)  # type: ignore[arg-type]
        if expr.func == "min":
            return min(values)  # type: ignore[type-var]
        if expr.func == "max":
            return max(values)  # type: ignore[type-var]
        if expr.func == "avg":
            numeric = [v for v in values if isinstance(v, (int, float))]
            if len(numeric) != len(values):
                raise EvaluationError("avg over non-numeric values")
            return sum(numeric) / len(numeric)
        raise EvaluationError(f"unknown aggregate {expr.func!r}")

    # -- materialize -----------------------------------------------------------------------------------------
    def _eval_materialize(self, expr: A.Materialize, env: Dict[str, Value]) -> Value:
        source = self._set(expr.source, env, "materialize operand")
        out = set()
        for item in source:
            record = self._tuple(item, "materialize element")
            ref = record[expr.attr]
            if isinstance(ref, Oid):
                self.stats.oid_derefs += 1
                attached: Value = self.db.deref(ref)
            elif isinstance(ref, frozenset):
                members = set()
                for oid in ref:
                    if not isinstance(oid, Oid):
                        raise EvaluationError(f"materialize over non-oid element {oid!r}")
                    self.stats.oid_derefs += 1
                    members.add(self.db.deref(oid))
                attached = frozenset(members)
            else:
                raise EvaluationError(f"materialize attribute {expr.attr!r} holds {ref!r}")
            out.add(record.update_except({expr.as_attr: attached}))
        return frozenset(out)


_DISPATCH = {
    A.Literal: Interpreter._eval_literal,
    A.Var: Interpreter._eval_var,
    A.ExtentRef: Interpreter._eval_extent,
    A.Param: Interpreter._eval_param,
    A.AttrAccess: Interpreter._eval_attr,
    A.TupleExpr: Interpreter._eval_tuple,
    A.SetExpr: Interpreter._eval_setexpr,
    A.TupleSubscript: Interpreter._eval_subscript,
    A.TupleUpdate: Interpreter._eval_update,
    A.Concat: Interpreter._eval_concat,
    A.Arith: Interpreter._eval_arith,
    A.Neg: Interpreter._eval_neg,
    A.Compare: Interpreter._eval_compare,
    A.SetCompare: Interpreter._eval_setcompare,
    A.And: Interpreter._eval_and,
    A.Or: Interpreter._eval_or,
    A.Not: Interpreter._eval_not,
    A.IsEmpty: Interpreter._eval_isempty,
    A.Exists: Interpreter._eval_exists,
    A.Forall: Interpreter._eval_forall,
    A.Map: Interpreter._eval_map,
    A.Select: Interpreter._eval_select,
    A.Project: Interpreter._eval_project,
    A.Rename: Interpreter._eval_rename,
    A.Flatten: Interpreter._eval_flatten,
    A.Unnest: Interpreter._eval_unnest,
    A.Nest: Interpreter._eval_nest,
    A.CartProd: Interpreter._eval_cart,
    A.Join: Interpreter._eval_join,
    A.SemiJoin: Interpreter._eval_semijoin,
    A.AntiJoin: Interpreter._eval_antijoin,
    A.OuterJoin: Interpreter._eval_outerjoin,
    A.NestJoin: Interpreter._eval_nestjoin,
    A.Stitch: Interpreter._eval_stitch,
    A.Division: Interpreter._eval_division,
    A.Union: Interpreter._eval_union,
    A.Intersect: Interpreter._eval_intersect,
    A.Difference: Interpreter._eval_difference,
    A.Aggregate: Interpreter._eval_aggregate,
    A.Materialize: Interpreter._eval_materialize,
}


def evaluate(
    expr: A.Expr,
    db,
    env: Optional[Mapping[str, Value]] = None,
    stats: Optional[Stats] = None,
    params: Optional[Mapping[str, Value]] = None,
) -> Value:
    """Convenience one-shot evaluation."""
    return Interpreter(db, stats, params).eval(expr, env)
