"""Execution: the naive interpreter, physical operators, and the planner."""

from repro.engine.compile import Compiler, compile_expr
from repro.engine.cost import CardinalityEstimator, CostModel, Estimate
from repro.engine.interpreter import Interpreter, evaluate
from repro.engine.nestjoin_impls import SortMergeNestJoin
from repro.engine.plan import ExecRuntime, PlanNode
from repro.engine.planner import Executor, JoinRecipe, Planner
from repro.engine.pnhl import pnhl_join, unnest_join_nest
from repro.engine.stats import Stats

__all__ = [
    "CardinalityEstimator",
    "Compiler",
    "CostModel",
    "Estimate",
    "ExecRuntime",
    "Executor",
    "Interpreter",
    "JoinRecipe",
    "PlanNode",
    "Planner",
    "SortMergeNestJoin",
    "Stats",
    "compile_expr",
    "evaluate",
    "pnhl_join",
    "unnest_join_nest",
]
