"""The cost model behind cost-based physical planning.

The paper's argument for rewriting nested loops into joins is that the
optimizer then "may choose from a number of different join processing
strategies" (Sections 5.1, 6).  Choosing needs numbers; this module turns
:class:`~repro.storage.catalog.Catalog` statistics into per-plan-node
estimates the planner can rank alternatives with.

Two layers:

**Cardinality estimation** (:class:`CardinalityEstimator`) propagates row
counts bottom-up through the logical algebra: extents report their
catalog cardinality, selections apply predicate selectivity (equality on
an attribute with known distinct count ``d`` is ``1/d``; ranges and
generic predicates use the classic System-R style fallback constants),
unnests multiply by the attribute's average set size, joins multiply the
operand cardinalities by ``1/max(nd(left key), nd(right key))``, and
semijoins/antijoins split the left side by the match fraction.  Every
estimate also carries a *provenance extent* — the extent whose tuples
still flow through the subplan — so attribute lookups against catalog
statistics survive filters and projections.

**Operator costing** (:class:`CostModel`) prices the physical
alternatives in abstract work units (roughly "one tuple touched"):

* hash join — build-side rows are charged :data:`HASH_INSERT_COST` each,
  probe-side rows :data:`HASH_PROBE_COST`; since either operand may be
  the build side, the planner prices both orientations and keeps the
  cheaper, which is how the build side lands on the smaller input;
* index nested-loop join — no build at all: the probe side pays
  :data:`INDEX_PROBE_COST` per tuple against a persistent catalog index,
  plus one touch per fetched match.  This wins when the probe side is
  much smaller than the indexed side (the hash join would scan and build
  the large side first);
* index scan — one probe plus the matching tuples, versus a full scan
  paying one touch per stored tuple;
* nested loops — the quadratic fallback, ``|L| × |R|`` predicate
  evaluations; it is priced, not banned, so tiny inputs can still choose
  it.

All constants are deliberately coarse: the goal is *ordering*
alternatives correctly under order-of-magnitude skews, not predicting
wall-clock time.  Unknown extents fall back to
:data:`DEFAULT_CARDINALITY`, so plans degrade to the PR-1 heuristics when
no statistics exist.  ``explain()`` prints each node's estimated rows and
cost, making every choice inspectable and testable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.adl import ast as A
from repro.adl.freevars import free_vars
from repro.storage.catalog import Catalog, ExtentStats


def _bound_attr(expr: A.Expr, var: str) -> Optional[str]:
    """``var.attr`` → ``attr`` (single path step), else ``None``.

    Shared by the estimator's selectivity rules and the planner's
    index-applicability checks — both must agree on what counts as a
    directly-bound attribute.
    """
    if isinstance(expr, A.AttrAccess) and expr.base == A.Var(var):
        return expr.attr
    return None


def _equi_attr_pairs(pred: A.Expr, lvar: str, rvar: str):
    """Directly-bound ``(left_attr, right_attr)`` pairs of the equality
    conjuncts of a join predicate — the shapes partition-wise execution
    can route by (shared with the stitch estimate's co-partitioning
    check)."""
    if isinstance(pred, A.And):
        return _equi_attr_pairs(pred.left, lvar, rvar) + _equi_attr_pairs(
            pred.right, lvar, rvar
        )
    if isinstance(pred, A.Compare) and pred.op == "=":
        for a, b in ((pred.left, pred.right), (pred.right, pred.left)):
            l_attr = _bound_attr(a, lvar)
            r_attr = _bound_attr(b, rvar)
            if l_attr is not None and r_attr is not None:
                return [(l_attr, r_attr)]
    return []


# -- fallback constants (used when the catalog has no statistics) -----------

DEFAULT_CARDINALITY = 1000.0
DEFAULT_SET_SIZE = 3.0
DEFAULT_DISTINCT_FRACTION = 0.1  # distinct values per row, absent stats

EQ_SELECTIVITY = 0.1
RANGE_SELECTIVITY = 0.3
MEMBER_SELECTIVITY = 0.2

#: Selectivity of one **residual conjunct** — a predicate the model cannot
#: classify into the equality/range/membership buckets above (arbitrary
#: boolean residue, whole-tuple comparisons, multi-leaf residues the
#: join-order extractor parks at their first covering join).  The classic
#: System-R "1/4 per unknown predicate" guess.  This single constant is
#: shared by the estimator's fallbacks here, the DP join-order
#: enumerator's residual pricing (:mod:`repro.engine.joinorder`), and —
#: through :meth:`CardinalityEstimator.join_selectivity` — the physical
#: planner's candidate ranking, so every layer prices an unknown conjunct
#: identically and differently-shaped plans stay comparable.
RESIDUAL_SELECTIVITY = 0.25

#: Backward-compatible alias for :data:`RESIDUAL_SELECTIVITY` (the old
#: name, kept for existing imports).
DEFAULT_SELECTIVITY = RESIDUAL_SELECTIVITY

SEMI_MATCH_FRACTION = 0.5
NEST_GROUP_FRACTION = 0.5

# -- per-unit operator costs ------------------------------------------------

TUPLE_COST = 1.0         # touching / emitting one tuple
PREDICATE_COST = 1.0     # evaluating a predicate on one candidate
HASH_INSERT_COST = 1.5   # hash-table build, per tuple
HASH_PROBE_COST = 1.0    # hash-table probe, per tuple
INDEX_PROBE_COST = 1.0   # persistent-index lookup, per probe

# -- partition-parallel execution (PR 5) ------------------------------------

#: Moving one tuple across a partition boundary (the gather exchange that
#: merges fragment outputs back into one stream).
EXCHANGE_TUPLE_COST = 0.5

#: Fixed per-fragment overhead of parallel execution: dispatch to a
#: worker, re-parse + re-plan of the shipped ADL text, result merge.
#: This constant *is* the parallelism threshold — a join whose total
#: work is small against it prices serial plans cheaper, which is what
#: keeps tiny queries off the pool (golden-tested).
PARALLEL_FRAGMENT_OVERHEAD = 500.0

# -- vectorized batch execution (PR 8) ---------------------------------------

#: Fixed per-batch dispatch overhead of batch-at-a-time execution: one
#: kernel invocation (and one chunk allocation) per batch instead of one
#: closure call per tuple.  Deliberately small against per-tuple unit
#: costs times any realistic batch size: batch mode changes the constant
#: factor of a plan, not its asymptotics, so pricing it per batch (not
#: per tuple) keeps the planner choosing the same plan *shapes* it
#: chooses in tuple mode (regression-tested).
BATCH_DISPATCH_COST = 2.0


@dataclass(frozen=True)
class Estimate:
    """Estimated output rows and cumulative cost of a (sub)plan.

    ``extent`` is the provenance extent: set when the subplan's tuples
    are (a filtered/projected subset of) one extent's tuples, so
    per-attribute statistics still apply.  ``attr_sources`` is the
    *per-attribute* provenance — attribute name → extent — carried by
    composite rows (join/product outputs concatenate their operands'
    tuples, so each attribute still comes from exactly one extent).  It is
    what lets the estimator price equality conjuncts over already-joined
    operands with real distinct counts instead of fallback constants,
    which in turn is what makes differently-ordered join trees comparable.
    """

    rows: float
    cost: float
    extent: Optional[str] = None
    attr_sources: Mapping[str, str] = field(default_factory=dict)


class CardinalityEstimator:
    """Bottom-up row-count estimation over logical ADL expressions.

    Estimates are memoized per node identity for the estimator's
    lifetime (ADL nodes are frozen): the planner asks for the estimate
    of every subexpression while annotating and ranking alternatives,
    which without the memo would re-walk shared subtrees at every level.
    """

    #: Memo flush threshold — keeps a long-lived planner from pinning
    #: every expression it ever estimated (same rationale as
    #: ``freevars._CACHE_LIMIT``).
    _MEMO_LIMIT = 1 << 16

    def __init__(
        self, catalog: Optional[Catalog], parallel_workers: int = 0
    ) -> None:
        self.catalog = catalog
        #: worker capacity of the owning planner/optimizer: > 1 lets the
        #: stitch estimate (PR 9) price its inner flat join as a
        #: partition-wise parallel join when the operands are
        #: co-partitioned — the same capacity the physical planner's
        #: parallel candidates use, threaded here so *logical* candidate
        #: ranking (nestjoin vs shredded) sees the same opportunity
        self.parallel_workers = parallel_workers
        self._memo: dict = {}  # id(expr) -> (expr, Estimate); strong refs pin ids

    # -- catalog access ------------------------------------------------------
    # ``source`` throughout is either an extent name, ``None``, or a child
    # :class:`Estimate` — the latter resolves attribute provenance through
    # ``attr_sources`` so composite (already-joined) operands still reach
    # real statistics.

    def _stats(self, extent: Optional[str]) -> Optional[ExtentStats]:
        if extent is None or self.catalog is None:
            return None
        return self.catalog.stats(extent)

    def _attr_extent(self, source, attr: str) -> Optional[str]:
        if isinstance(source, Estimate):
            if source.extent is not None:
                return source.extent
            return source.attr_sources.get(attr)
        return source

    def _distinct(self, source, attr: str) -> Optional[float]:
        stats = self._stats(self._attr_extent(source, attr))
        if stats is None:
            return None
        nd = stats.distinct_count(attr)
        return float(nd) if nd else None

    def distinct_for(self, source, attr: str) -> Optional[float]:
        """Distinct count of ``attr`` on an operand (extent name or child
        :class:`Estimate`) — the join-order enumerator's scoring hook."""
        return self._distinct(source, attr)

    def _set_size(self, source, attr: str) -> float:
        stats = self._stats(self._attr_extent(source, attr))
        if stats is not None:
            size = stats.set_size(attr)
            if size is not None:
                return size
        return DEFAULT_SET_SIZE

    def _sources(self, est: Estimate) -> Mapping[str, str]:
        """The attribute→extent provenance map of an operand estimate."""
        if est.extent is not None:
            stats = self._stats(est.extent)
            if stats is not None:
                out = {attr: est.extent for attr in stats.distinct}
                for attr in stats.avg_set_size:
                    out.setdefault(attr, est.extent)
                return out
        return est.attr_sources

    # -- estimation ----------------------------------------------------------
    def estimate(self, expr: A.Expr) -> Estimate:
        entry = self._memo.get(id(expr))
        if entry is not None and entry[0] is expr:
            return entry[1]
        result = self._estimate(expr)
        if len(self._memo) >= self._MEMO_LIMIT:
            self._memo.clear()
        self._memo[id(expr)] = (expr, result)
        return result

    def _estimate(self, expr: A.Expr) -> Estimate:
        if isinstance(expr, A.ExtentRef):
            stats = self._stats(expr.name)
            rows = float(stats.cardinality) if stats is not None else DEFAULT_CARDINALITY
            return Estimate(rows, rows * TUPLE_COST, expr.name)
        if isinstance(expr, A.Select):
            child = self.estimate(expr.source)
            sel = self.selectivity(expr.pred, expr.var, child)
            return Estimate(
                child.rows * sel,
                child.cost + child.rows * PREDICATE_COST,
                child.extent,
                child.attr_sources,
            )
        if isinstance(expr, A.Map):
            child = self.estimate(expr.source)
            identity = expr.body == A.Var(expr.var)
            return Estimate(
                child.rows,
                child.cost + child.rows * TUPLE_COST,
                child.extent if identity else None,
                child.attr_sources if identity else {},
            )
        if isinstance(expr, A.Project):
            child = self.estimate(expr.source)
            sources = {
                a: e for a, e in self._sources(child).items() if a in expr.attrs
            }
            return Estimate(
                child.rows, child.cost + child.rows * TUPLE_COST, child.extent, sources
            )
        if isinstance(expr, A.Rename):
            child = self.estimate(expr.source)
            renames = dict(expr.renames)
            sources = {
                renames.get(a, a): e for a, e in self._sources(child).items()
            }
            return Estimate(
                child.rows, child.cost + child.rows * TUPLE_COST, None, sources
            )
        if isinstance(expr, A.Unnest):
            child = self.estimate(expr.source)
            fanout = self._set_size(child, expr.attr)
            rows = child.rows * max(fanout, 1.0)
            sources = {
                a: e for a, e in self._sources(child).items() if a != expr.attr
            }
            return Estimate(rows, child.cost + rows * TUPLE_COST, None, sources)
        if isinstance(expr, A.Nest):
            child = self.estimate(expr.source)
            return Estimate(
                max(child.rows * NEST_GROUP_FRACTION, 1.0),
                child.cost + child.rows * TUPLE_COST,
            )
        if isinstance(expr, A.Flatten):
            child = self.estimate(expr.source)
            rows = child.rows * DEFAULT_SET_SIZE
            return Estimate(rows, child.cost + rows * TUPLE_COST)
        if isinstance(expr, A.Materialize):
            child = self.estimate(expr.source)
            return Estimate(child.rows, child.cost + child.rows * TUPLE_COST)
        if isinstance(expr, A.Union):
            left, right = self.estimate(expr.left), self.estimate(expr.right)
            return Estimate(left.rows + right.rows, left.cost + right.cost)
        if isinstance(expr, A.Intersect):
            left, right = self.estimate(expr.left), self.estimate(expr.right)
            return Estimate(min(left.rows, right.rows), left.cost + right.cost)
        if isinstance(expr, A.Difference):
            left, right = self.estimate(expr.left), self.estimate(expr.right)
            return Estimate(left.rows, left.cost + right.cost)
        if isinstance(expr, A.CartProd):
            left, right = self.estimate(expr.left), self.estimate(expr.right)
            rows = left.rows * right.rows
            return Estimate(
                rows,
                left.cost + right.cost + rows * TUPLE_COST,
                None,
                self._merge_sources(left, right),
            )
        if isinstance(expr, A.Division):
            left, right = self.estimate(expr.left), self.estimate(expr.right)
            return Estimate(
                max(left.rows * NEST_GROUP_FRACTION, 1.0), left.cost + right.cost
            )
        if isinstance(expr, A.Stitch):
            return self._estimate_stitch(expr)
        if isinstance(expr, (A.Join, A.SemiJoin, A.AntiJoin, A.OuterJoin, A.NestJoin)):
            return self._estimate_join(expr)
        if isinstance(expr, A.SetExpr):
            return Estimate(float(len(expr.elements)), float(len(expr.elements)))
        if isinstance(expr, A.Literal) and isinstance(expr.value, frozenset):
            return Estimate(float(len(expr.value)), float(len(expr.value)))
        # scalar residue / unknown leaves
        return Estimate(DEFAULT_CARDINALITY, DEFAULT_CARDINALITY)

    def _merge_sources(self, left: Estimate, right: Estimate) -> Mapping[str, str]:
        """Concatenated-tuple provenance: both operands' attributes, each
        still owned by its original extent (``concat`` forbids clashes, so
        an overlap can only come from estimation noise — drop those)."""
        lsrc, rsrc = self._sources(left), self._sources(right)
        merged = dict(lsrc)
        for attr, extent in rsrc.items():
            if merged.get(attr, extent) != extent:
                del merged[attr]
            else:
                merged[attr] = extent
        return merged

    def _estimate_join(self, expr) -> Estimate:
        left = self.estimate(expr.left)
        right = self.estimate(expr.right)
        sel = self.join_selectivity(expr.pred, expr.lvar, expr.rvar, left, right)
        pair_rows = left.rows * right.rows * sel
        # default cost: hash-ish (both sides touched once); the planner
        # re-prices physical alternatives explicitly, this is only for
        # enclosing operators
        cost = left.cost + right.cost + (left.rows + right.rows) * TUPLE_COST
        if isinstance(expr, A.Join):
            return Estimate(
                pair_rows,
                cost + pair_rows * TUPLE_COST,
                None,
                self._merge_sources(left, right),
            )
        if isinstance(expr, A.SemiJoin):
            return Estimate(left.rows * SEMI_MATCH_FRACTION, cost, left.extent)
        if isinstance(expr, A.AntiJoin):
            return Estimate(left.rows * (1.0 - SEMI_MATCH_FRACTION), cost, left.extent)
        if isinstance(expr, A.OuterJoin):
            return Estimate(
                max(pair_rows, left.rows), cost, None, self._merge_sources(left, right)
            )
        # nestjoin: one output tuple per left tuple, groups attached
        return Estimate(left.rows, cost + pair_rows * TUPLE_COST, left.extent)

    def _estimate_stitch(self, expr) -> Estimate:
        """Shredded evaluation (PR 9): inner flat join + group build +
        outer re-stream.

        The serial estimate is the nestjoin's join arithmetic *plus* the
        stitch's own work (hash group build over the flat pairs, and the
        outer re-stream that re-attaches groups), so a serial stitch can
        never price below the fused nestjoin — the paper's tiny queries
        provably stay unshredded.  With worker capacity and co-partitioned
        operands the inner flat join is additionally priced as a
        partition-wise parallel join (the very strategy the physical
        planner will pick for it), and the cheaper inner price wins —
        which is how shredding pays off on partitioned data.
        """
        left = self.estimate(expr.left)
        right = self.estimate(expr.right)
        sel = self.join_selectivity(expr.pred, expr.lvar, expr.rvar, left, right)
        pair_rows = left.rows * right.rows * sel
        # the inner flat join, priced exactly like the A.Join case above
        join_cost = (
            left.cost
            + right.cost
            + (left.rows + right.rows) * TUPLE_COST
            + pair_rows * TUPLE_COST
        )
        if self.parallel_workers > 1:
            parallel = self._parallel_stitch_join_cost(expr, left, right, pair_rows)
            if parallel is not None and parallel < join_cost:
                join_cost = parallel
        # the stitch proper: only the work the fused nestjoin does *not*
        # pay — the group-build hash insert per flat pair (the per-pair
        # result evaluation is already in the join's ``pair_rows`` term,
        # exactly where the fused form pays it) plus the outer re-stream
        # emitting every left tuple with its (possibly empty) group.
        # Strictly positive, so a *serial* stitch always prices above the
        # fused nestjoin and the paper's tiny queries stay unshredded.
        stitch_cost = pair_rows * HASH_INSERT_COST + left.cost + left.rows * TUPLE_COST
        return Estimate(left.rows, join_cost + stitch_cost, left.extent)

    @staticmethod
    def _select_base(operand: A.Expr) -> Optional[str]:
        """The base extent under a chain of selections (the same
        fragment-shippable shapes the physical planner accepts)."""
        node = operand
        while isinstance(node, A.Select):
            node = node.source
        return node.name if isinstance(node, A.ExtentRef) else None

    def _parallel_stitch_join_cost(
        self, expr, left: Estimate, right: Estimate, out_rows: float
    ) -> Optional[float]:
        """Partition-wise price of the stitch's inner flat join, or
        ``None`` when the operands are not co-partitioned on an equi key
        pair.  Mirrors the physical planner's partition-wise candidate —
        same strategy, same build/probe orientation, same skew balance —
        so the logical ranking agrees with what the planner will build.
        """
        if self.catalog is None:
            return None
        l_ext = self._select_base(expr.left)
        r_ext = self._select_base(expr.right)
        if l_ext is None or r_ext is None:
            return None
        lp = self.catalog.partitioning(l_ext)
        rp = self.catalog.partitioning(r_ext)
        if lp is None or rp is None or lp.parts != rp.parts:
            return None
        if not any(
            l_attr == lp.attr and r_attr == rp.attr
            for l_attr, r_attr in _equi_attr_pairs(expr.pred, expr.lvar, expr.rvar)
        ):
            return None

        def balance(pe) -> Optional[float]:
            total = sum(pe.cardinalities)
            return max(pe.cardinalities) / total if total else None

        balances = [b for b in (balance(lp), balance(rp)) if b]
        model = CostModel(self.catalog)
        return model.parallel_join_cost(
            "partition-wise",
            right,
            left,
            out_rows,
            lp.parts,
            self.parallel_workers,
            balance=max(balances) if balances else None,
        )

    # -- selectivity ---------------------------------------------------------
    # ``source`` / ``left`` / ``right`` are extent names, ``None``, or child
    # ``Estimate`` objects (whose ``attr_sources`` resolve attributes of
    # composite operands — see :meth:`_attr_extent`).

    def selectivity(self, pred: A.Expr, var: str, source=None) -> float:
        """Fraction of tuples bound to ``var`` satisfying ``pred``."""
        if isinstance(pred, A.Literal):
            if pred.value is True:
                return 1.0
            if pred.value is False:
                return 0.0
            return RESIDUAL_SELECTIVITY
        if isinstance(pred, A.And):
            return self.selectivity(pred.left, var, source) * self.selectivity(
                pred.right, var, source
            )
        if isinstance(pred, A.Or):
            s1 = self.selectivity(pred.left, var, source)
            s2 = self.selectivity(pred.right, var, source)
            return min(1.0, s1 + s2 - s1 * s2)
        if isinstance(pred, A.Not):
            return max(0.0, 1.0 - self.selectivity(pred.operand, var, source))
        if isinstance(pred, A.Compare):
            if pred.op == "=":
                attr = _bound_attr(pred.left, var) or _bound_attr(
                    pred.right, var
                )
                if attr is not None:
                    nd = self._distinct(source, attr)
                    if nd:
                        return 1.0 / nd
                return EQ_SELECTIVITY
            if pred.op == "!=":
                return 1.0 - EQ_SELECTIVITY
            return RANGE_SELECTIVITY
        if isinstance(pred, A.SetCompare) and pred.op in ("in", "ni"):
            return MEMBER_SELECTIVITY
        return RESIDUAL_SELECTIVITY

    def join_selectivity(
        self,
        pred: A.Expr,
        lvar: str,
        rvar: str,
        left=None,
        right=None,
    ) -> float:
        """Fraction of the cross product surviving the join predicate."""
        if isinstance(pred, A.And):
            return self.join_selectivity(
                pred.left, lvar, rvar, left, right
            ) * self.join_selectivity(pred.right, lvar, rvar, left, right)
        if isinstance(pred, A.Literal) and pred.value is True:
            return 1.0
        if isinstance(pred, A.Compare) and pred.op == "=":
            candidates = []
            for side, var, source in (
                (pred.left, lvar, left),
                (pred.right, lvar, left),
            ):
                attr = _bound_attr(side, var)
                if attr is not None:
                    candidates.append(self._distinct(source, attr))
            for side, var, source in (
                (pred.left, rvar, right),
                (pred.right, rvar, right),
            ):
                attr = _bound_attr(side, var)
                if attr is not None:
                    candidates.append(self._distinct(source, attr))
            known = [nd for nd in candidates if nd]
            if known:
                return 1.0 / max(known)
            return EQ_SELECTIVITY
        if isinstance(pred, A.SetCompare) and pred.op == "in":
            return MEMBER_SELECTIVITY
        # predicates over one side only filter that side
        fv = free_vars(pred)
        if fv <= {lvar}:
            return self.selectivity(pred, lvar, left)
        if fv <= {rvar}:
            return self.selectivity(pred, rvar, right)
        return RESIDUAL_SELECTIVITY


class CostModel:
    """Prices the planner's physical alternatives from child estimates.

    ``batch_size`` (PR 8) prices batch-at-a-time execution: each priced
    alternative additionally pays :data:`BATCH_DISPATCH_COST` per chunk
    its inputs/outputs flow through (:meth:`_dispatch`).  The default
    ``None`` charges nothing, so tuple-mode cost numbers — and every
    golden explain — are bit-identical to before.
    """

    def __init__(
        self,
        catalog: Optional[Catalog],
        batch_size: Optional[int] = None,
        parallel_workers: int = 0,
    ) -> None:
        self.catalog = catalog
        self.batch_size = batch_size
        self.estimator = CardinalityEstimator(catalog, parallel_workers=parallel_workers)

    def estimate(self, expr: A.Expr) -> Estimate:
        return self.estimator.estimate(expr)

    def _dispatch(self, rows: float) -> float:
        """Per-batch dispatch overhead for ``rows`` flowing through one
        operator edge — zero in tuple mode."""
        if not self.batch_size:
            return 0.0
        return BATCH_DISPATCH_COST * math.ceil(max(rows, 0.0) / self.batch_size)

    # -- join alternatives ---------------------------------------------------
    def hash_join_cost(
        self, build: Estimate, probe: Estimate, out_rows: float
    ) -> float:
        return (
            build.cost
            + probe.cost
            + build.rows * HASH_INSERT_COST
            + probe.rows * HASH_PROBE_COST
            + out_rows * TUPLE_COST
            + self._dispatch(probe.rows)
            + self._dispatch(out_rows)
        )

    def index_nl_join_cost(self, probe: Estimate, out_rows: float) -> float:
        # no build: the persistent index replaces scanning the indexed
        # side entirely, so only probes and fetched matches are charged
        return (
            probe.cost
            + probe.rows * INDEX_PROBE_COST
            + out_rows * TUPLE_COST
            + self._dispatch(out_rows)
        )

    def nested_loop_cost(
        self, left: Estimate, right: Estimate, out_rows: float
    ) -> float:
        return (
            left.cost
            + right.cost
            + left.rows * right.rows * PREDICATE_COST
            + out_rows * TUPLE_COST
            + self._dispatch(out_rows)
        )

    def parallel_join_cost(
        self,
        strategy: str,
        build: Estimate,
        probe: Estimate,
        out_rows: float,
        parts: int,
        workers: int,
        balance: Optional[float] = None,
    ) -> float:
        """Elapsed-work cost of a ``parts``-way partitioned hash join.

        ``balance`` is the fraction of rows in the *largest* shard (from
        the registered partitioning's per-shard statistics) — the
        critical-path divisor for partition-divided work, floored at the
        even split ``1/eff``.  ``None`` (no stored partitioning to read,
        e.g. repartition) assumes an even hash split.

        Costs model the *critical path* under ``min(parts, workers)``
        effective parallelism — per-partition work divides, work every
        fragment repeats does not:

        * ``partition-wise`` — co-partitioned inputs: scans, build and
          probe all divide by the effective parallelism (fragments read
          stored shards; no exchange);
        * ``broadcast`` — every fragment reads and builds the *whole*
          (small) build side, so that part is paid in full; the
          partitioned probe side divides;
        * ``repartition`` — the shared-scan exchange: every fragment
          scans both full inputs to hash-filter out its bucket (paid in
          full), then the hash work divides.

        All strategies add the per-fragment dispatch overhead
        (:data:`PARALLEL_FRAGMENT_OVERHEAD`, amortized over parallel
        waves) and the gather of ``out_rows`` results
        (:data:`EXCHANGE_TUPLE_COST` each).
        """
        effective = max(1, min(parts, workers))
        # the biggest fragment is the critical path: never better than the
        # even split, degrading toward serial as one shard dominates
        share = max(1.0 / effective, min(balance, 1.0)) if balance else 1.0 / effective
        hash_work = (
            build.rows * HASH_INSERT_COST
            + probe.rows * HASH_PROBE_COST
            + out_rows * TUPLE_COST
        )
        if strategy == "partition-wise":
            elapsed = (build.cost + probe.cost + hash_work) * share
        elif strategy == "broadcast":
            elapsed = (
                build.cost
                + build.rows * HASH_INSERT_COST
                + (probe.cost + probe.rows * HASH_PROBE_COST + out_rows * TUPLE_COST)
                * share
            )
        elif strategy == "repartition":
            elapsed = build.cost + probe.cost + hash_work * share
        else:
            raise ValueError(f"unknown parallel join strategy {strategy!r}")
        startup = PARALLEL_FRAGMENT_OVERHEAD * parts / effective
        gather = out_rows * EXCHANGE_TUPLE_COST
        return startup + elapsed + gather

    # -- selection alternatives ----------------------------------------------
    def index_scan_cost(self, matching_rows: float) -> float:
        return INDEX_PROBE_COST + matching_rows * TUPLE_COST + self._dispatch(matching_rows)

    def filter_scan_cost(self, source: Estimate) -> float:
        return source.cost + source.rows * PREDICATE_COST + self._dispatch(source.rows)


def format_estimate(rows: Optional[float], cost: Optional[float]) -> str:
    """The ``explain()`` annotation: ``(rows≈12, cost≈340)``."""
    if rows is None:
        return ""

    def fmt(x: float) -> str:
        if x >= 100 or x == int(x):
            return str(int(round(x)))
        return f"{x:.1f}"

    if cost is None:
        return f"(rows≈{fmt(rows)})"
    return f"(rows≈{fmt(rows)}, cost≈{fmt(cost)})"
