"""Physical plan operators.

"It is better to transform nested queries into join queries, because join
queries can be implemented in many different ways" (Section 7) — this
module is the "many different ways": hash and sort-merge implementations of
the join family, hash nestjoin, membership joins for ``e ∈ x.parts``-style
predicates, plus the pipeline operators (scan, filter, map, nest, unnest,
project...).

Every node implements ``execute(rt) -> frozenset`` against an
:class:`ExecRuntime` carrying the database, an
:class:`~repro.engine.interpreter.Interpreter` for parameter expressions,
and the shared :class:`~repro.engine.stats.Stats` counters.  ``explain()``
renders the physical tree.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.adl import ast as A
from repro.datamodel.errors import EvaluationError, PlanError
from repro.datamodel.values import Value, VTuple, concat
from repro.engine.interpreter import Interpreter
from repro.engine.stats import Stats


class ExecRuntime:
    """Execution context shared by all operators of one plan run."""

    def __init__(self, db, stats: Optional[Stats] = None) -> None:
        self.db = db
        self.stats = stats if stats is not None else Stats()
        self.interpreter = Interpreter(db, self.stats)

    def eval(self, expr: A.Expr, env: Optional[Dict[str, Value]] = None) -> Value:
        return self.interpreter.eval(expr, env or {})

    def eval_pred(self, expr: A.Expr, env: Dict[str, Value]) -> bool:
        self.stats.predicate_evals += 1
        value = self.interpreter.eval(expr, env)
        if not isinstance(value, bool):
            raise EvaluationError(f"predicate produced non-boolean {value!r}")
        return value


class PlanNode:
    """Base class of physical operators."""

    #: Short operator label used by ``explain``.
    label = "plan"

    def execute(self, rt: ExecRuntime) -> frozenset:
        raise NotImplementedError

    def children(self) -> Sequence["PlanNode"]:
        return ()

    def describe(self) -> str:
        return ""

    def explain(self, indent: str = "") -> str:
        detail = self.describe()
        line = f"{indent}{self.label}" + (f" [{detail}]" if detail else "")
        parts = [line]
        parts.extend(child.explain(indent + "  ") for child in self.children())
        return "\n".join(parts)

    def operators(self):
        yield self
        for child in self.children():
            yield from child.operators()


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


class Scan(PlanNode):
    """Full extent scan — charges page I/O on paged stores."""

    label = "Scan"

    def __init__(self, extent: str) -> None:
        self.extent = extent

    def describe(self) -> str:
        return self.extent

    def execute(self, rt: ExecRuntime) -> frozenset:
        if hasattr(rt.db, "scan"):
            return frozenset(rt.db.scan(self.extent))
        return rt.db.extent(self.extent)


class EvalExpr(PlanNode):
    """Fallback: evaluate an arbitrary ADL expression with the interpreter.

    This is where non-set-oriented residue executes — by nested loops,
    exactly as the paper's option 4 prescribes.
    """

    label = "Eval"

    def __init__(self, expr: A.Expr) -> None:
        self.expr = expr

    def describe(self) -> str:
        from repro.adl.pretty import pretty

        text = pretty(self.expr)
        return text if len(text) <= 60 else text[:57] + "..."

    def execute(self, rt: ExecRuntime) -> frozenset:
        value = rt.eval(self.expr)
        if not isinstance(value, frozenset):
            raise PlanError(f"plan leaf produced a non-set value: {value!r}")
        return value


# ---------------------------------------------------------------------------
# Pipeline operators
# ---------------------------------------------------------------------------


class Filter(PlanNode):
    label = "Filter"

    def __init__(self, var: str, pred: A.Expr, child: PlanNode) -> None:
        self.var = var
        self.pred = pred
        self.child = child

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        from repro.adl.pretty import pretty

        return f"{self.var}: {pretty(self.pred)}"

    def execute(self, rt: ExecRuntime) -> frozenset:
        out = set()
        env: Dict[str, Value] = {}
        for item in self.child.execute(rt):
            rt.stats.tuples_visited += 1
            env[self.var] = item
            if rt.eval_pred(self.pred, env):
                out.add(item)
        return frozenset(out)


class MapOp(PlanNode):
    label = "Map"

    def __init__(self, var: str, body: A.Expr, child: PlanNode) -> None:
        self.var = var
        self.body = body
        self.child = child

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        from repro.adl.pretty import pretty

        return f"{self.var}: {pretty(self.body)}"

    def execute(self, rt: ExecRuntime) -> frozenset:
        out = set()
        env: Dict[str, Value] = {}
        for item in self.child.execute(rt):
            rt.stats.tuples_visited += 1
            env[self.var] = item
            out.add(rt.eval(self.body, env))
        return frozenset(out)


class ProjectOp(PlanNode):
    label = "Project"

    def __init__(self, attrs: Tuple[str, ...], child: PlanNode) -> None:
        self.attrs = attrs
        self.child = child

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return ", ".join(self.attrs)

    def execute(self, rt: ExecRuntime) -> frozenset:
        out = set()
        for item in self.child.execute(rt):
            rt.stats.tuples_visited += 1
            out.add(item.subscript(self.attrs))
        return frozenset(out)


class RenameOp(PlanNode):
    label = "Rename"

    def __init__(self, renames: Tuple[Tuple[str, str], ...], child: PlanNode) -> None:
        self.renames = renames
        self.child = child

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return ", ".join(f"{a}->{b}" for a, b in self.renames)

    def execute(self, rt: ExecRuntime) -> frozenset:
        out = set()
        for item in self.child.execute(rt):
            fields = dict(item)
            for old, new in self.renames:
                fields[new] = fields.pop(old)
            out.add(VTuple(fields))
        return frozenset(out)


class UnnestOp(PlanNode):
    label = "Unnest"

    def __init__(self, attr: str, child: PlanNode) -> None:
        self.attr = attr
        self.child = child

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return self.attr

    def execute(self, rt: ExecRuntime) -> frozenset:
        out = set()
        for item in self.child.execute(rt):
            members = item[self.attr]
            rest = item.drop((self.attr,))
            for member in members:
                rt.stats.tuples_visited += 1
                out.add(concat(member, rest))
        return frozenset(out)


class NestOp(PlanNode):
    label = "Nest"

    def __init__(self, attrs: Tuple[str, ...], as_attr: str, child: PlanNode) -> None:
        self.attrs = attrs
        self.as_attr = as_attr
        self.child = child

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"{', '.join(self.attrs)} -> {self.as_attr}"

    def execute(self, rt: ExecRuntime) -> frozenset:
        groups: Dict[VTuple, set] = {}
        for item in self.child.execute(rt):
            rt.stats.tuples_visited += 1
            key = item.drop(self.attrs)
            groups.setdefault(key, set()).add(item.subscript(self.attrs))
        return frozenset(
            key.update_except({self.as_attr: frozenset(group)}) for key, group in groups.items()
        )


class FlattenOp(PlanNode):
    label = "Flatten"

    def __init__(self, child: PlanNode) -> None:
        self.child = child

    def children(self):
        return (self.child,)

    def execute(self, rt: ExecRuntime) -> frozenset:
        out = set()
        for member in self.child.execute(rt):
            out |= member
        return frozenset(out)


class SetOp(PlanNode):
    """Union / intersection / difference."""

    def __init__(self, kind: str, left: PlanNode, right: PlanNode) -> None:
        if kind not in ("union", "intersect", "difference"):
            raise PlanError(f"unknown set operation {kind!r}")
        self.kind = kind
        self.left = left
        self.right = right
        self.label = f"SetOp({kind})"

    def children(self):
        return (self.left, self.right)

    def execute(self, rt: ExecRuntime) -> frozenset:
        left = self.left.execute(rt)
        right = self.right.execute(rt)
        if self.kind == "union":
            return left | right
        if self.kind == "intersect":
            return left & right
        return left - right


# ---------------------------------------------------------------------------
# Join family — nested loop fallbacks
# ---------------------------------------------------------------------------

JOIN_KINDS = ("join", "semijoin", "antijoin", "outerjoin", "nestjoin")


class NestedLoopJoin(PlanNode):
    """Generic nested-loop implementation of the whole join family.

    The baseline the paper wants to escape; kept as the fallback for
    non-equi predicates and as the comparison point in benchmarks.
    """

    def __init__(
        self,
        kind: str,
        lvar: str,
        rvar: str,
        pred: A.Expr,
        left: PlanNode,
        right: PlanNode,
        as_attr: Optional[str] = None,
        result: Optional[A.Expr] = None,
        right_attrs: Tuple[str, ...] = (),
    ) -> None:
        if kind not in JOIN_KINDS:
            raise PlanError(f"unknown join kind {kind!r}")
        self.kind = kind
        self.lvar = lvar
        self.rvar = rvar
        self.pred = pred
        self.left = left
        self.right = right
        self.as_attr = as_attr
        self.result = result
        self.right_attrs = right_attrs
        self.label = f"NestedLoop({kind})"

    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        from repro.adl.pretty import pretty

        return f"{self.lvar},{self.rvar}: {pretty(self.pred)}"

    def execute(self, rt: ExecRuntime) -> frozenset:
        left = self.left.execute(rt)
        right = self.right.execute(rt)
        env: Dict[str, Value] = {}
        out = set()
        null_pad = VTuple({a: None for a in self.right_attrs})
        for x in left:
            env[self.lvar] = x
            matched = False
            group = set()
            for y in right:
                rt.stats.tuples_visited += 1
                env[self.rvar] = y
                if rt.eval_pred(self.pred, env):
                    matched = True
                    if self.kind == "join" or self.kind == "outerjoin":
                        out.add(concat(x, y))
                    elif self.kind == "semijoin":
                        break
                    elif self.kind == "nestjoin":
                        group.add(rt.eval(self.result, env))
            if self.kind == "semijoin" and matched:
                out.add(x)
            elif self.kind == "antijoin" and not matched:
                out.add(x)
            elif self.kind == "outerjoin" and not matched:
                out.add(concat(x, null_pad))
            elif self.kind == "nestjoin":
                out.add(x.update_except({self.as_attr: frozenset(group)}))
        rt.stats.output_tuples += len(out)
        return frozenset(out)


# ---------------------------------------------------------------------------
# Join family — hash implementations
# ---------------------------------------------------------------------------


class HashJoinBase(PlanNode):
    """Shared machinery: build a hash table on the right operand's key
    expressions, probe with the left's; a residual predicate filters
    candidate pairs."""

    def __init__(
        self,
        kind: str,
        lvar: str,
        rvar: str,
        left_keys: Tuple[A.Expr, ...],
        right_keys: Tuple[A.Expr, ...],
        residual: A.Expr,
        left: PlanNode,
        right: PlanNode,
        as_attr: Optional[str] = None,
        result: Optional[A.Expr] = None,
        right_attrs: Tuple[str, ...] = (),
    ) -> None:
        if kind not in JOIN_KINDS:
            raise PlanError(f"unknown join kind {kind!r}")
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanError("hash join needs matching, non-empty key lists")
        self.kind = kind
        self.lvar = lvar
        self.rvar = rvar
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.left = left
        self.right = right
        self.as_attr = as_attr
        self.result = result
        self.right_attrs = right_attrs
        self.label = f"HashJoin({kind})"

    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        from repro.adl.pretty import pretty

        keys = " ∧ ".join(
            f"{pretty(l)} = {pretty(r)}" for l, r in zip(self.left_keys, self.right_keys)
        )
        if self.residual != A.Literal(True):
            keys += f" ; residual {pretty(self.residual)}"
        return keys

    def _build(self, rt: ExecRuntime, rows: frozenset) -> Dict[Value, List[VTuple]]:
        table: Dict[Value, List[VTuple]] = {}
        env: Dict[str, Value] = {}
        for y in rows:
            env[self.rvar] = y
            key = tuple(rt.eval(k, env) for k in self.right_keys)
            table.setdefault(key, []).append(y)
            rt.stats.hash_inserts += 1
        return table

    def _matches(self, rt: ExecRuntime, table, x: VTuple, env: Dict[str, Value]):
        env[self.lvar] = x
        key = tuple(rt.eval(k, env) for k in self.left_keys)
        rt.stats.hash_probes += 1
        trivial_residual = self.residual == A.Literal(True)
        for y in table.get(key, ()):
            env[self.rvar] = y
            if trivial_residual or rt.eval_pred(self.residual, env):
                yield y

    def execute(self, rt: ExecRuntime) -> frozenset:
        left = self.left.execute(rt)
        right = self.right.execute(rt)
        table = self._build(rt, right)
        env: Dict[str, Value] = {}
        out = set()
        null_pad = VTuple({a: None for a in self.right_attrs})
        for x in left:
            rt.stats.tuples_visited += 1
            matched = False
            if self.kind == "nestjoin":
                group = set()
                for y in self._matches(rt, table, x, env):
                    group.add(rt.eval(self.result, env))
                out.add(x.update_except({self.as_attr: frozenset(group)}))
                continue
            for y in self._matches(rt, table, x, env):
                matched = True
                if self.kind in ("join", "outerjoin"):
                    out.add(concat(x, y))
                elif self.kind == "semijoin":
                    break
            if self.kind == "semijoin" and matched:
                out.add(x)
            elif self.kind == "antijoin" and not matched:
                out.add(x)
            elif self.kind == "outerjoin" and not matched:
                out.add(concat(x, null_pad))
        rt.stats.output_tuples += len(out)
        return frozenset(out)


class MembershipHashJoin(PlanNode):
    """Hash join for set-membership predicates like ``p[pid] ∈ s.parts``.

    Two orientations:

    * ``probe_side="left-set"`` — the left tuple carries the set; the hash
      table maps the right element expression to right tuples; every member
      of the left set probes the table (Example Queries 5 and 6);
    * ``probe_side="right-set"`` — the right tuple carries the set; the
      table is *multi-keyed* on the set members and the left element
      expression probes it.
    """

    def __init__(
        self,
        kind: str,
        lvar: str,
        rvar: str,
        element: A.Expr,
        container: A.Expr,
        probe_side: str,
        residual: A.Expr,
        left: PlanNode,
        right: PlanNode,
        as_attr: Optional[str] = None,
        result: Optional[A.Expr] = None,
        right_attrs: Tuple[str, ...] = (),
    ) -> None:
        if kind not in JOIN_KINDS:
            raise PlanError(f"unknown join kind {kind!r}")
        if probe_side not in ("left-set", "right-set"):
            raise PlanError(f"unknown probe side {probe_side!r}")
        self.kind = kind
        self.lvar = lvar
        self.rvar = rvar
        self.element = element
        self.container = container
        self.probe_side = probe_side
        self.residual = residual
        self.left = left
        self.right = right
        self.as_attr = as_attr
        self.result = result
        self.right_attrs = right_attrs
        self.label = f"MembershipHashJoin({kind})"

    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        from repro.adl.pretty import pretty

        return f"{pretty(self.element)} ∈ {pretty(self.container)} [{self.probe_side}]"

    def _candidates(self, rt, table, x, env) -> List[VTuple]:
        env[self.lvar] = x
        seen: List[VTuple] = []
        marked = set()
        if self.probe_side == "left-set":
            container = rt.eval(self.container, env)
            if not isinstance(container, frozenset):
                raise EvaluationError("membership join container is not a set")
            for member in container:
                rt.stats.hash_probes += 1
                for y in table.get(member, ()):
                    if id(y) not in marked:
                        marked.add(id(y))
                        seen.append(y)
        else:
            key = rt.eval(self.element, env)
            rt.stats.hash_probes += 1
            seen = list(table.get(key, ()))
        return seen

    def execute(self, rt: ExecRuntime) -> frozenset:
        left = self.left.execute(rt)
        right = self.right.execute(rt)
        table: Dict[Value, List[VTuple]] = {}
        env: Dict[str, Value] = {}
        for y in right:
            env[self.rvar] = y
            if self.probe_side == "left-set":
                key = rt.eval(self.element, env)
                table.setdefault(key, []).append(y)
                rt.stats.hash_inserts += 1
            else:
                container = rt.eval(self.container, env)
                if not isinstance(container, frozenset):
                    raise EvaluationError("membership join container is not a set")
                for member in container:
                    table.setdefault(member, []).append(y)
                    rt.stats.hash_inserts += 1

        trivial_residual = self.residual == A.Literal(True)
        out = set()
        null_pad = VTuple({a: None for a in self.right_attrs})
        for x in left:
            rt.stats.tuples_visited += 1
            matched = False
            group = set()
            for y in self._candidates(rt, table, x, env):
                env[self.rvar] = y
                if not trivial_residual and not rt.eval_pred(self.residual, env):
                    continue
                matched = True
                if self.kind in ("join", "outerjoin"):
                    out.add(concat(x, y))
                elif self.kind == "semijoin":
                    break
                elif self.kind == "nestjoin":
                    group.add(rt.eval(self.result, env))
            if self.kind == "semijoin" and matched:
                out.add(x)
            elif self.kind == "antijoin" and not matched:
                out.add(x)
            elif self.kind == "outerjoin" and not matched:
                out.add(concat(x, null_pad))
            elif self.kind == "nestjoin":
                out.add(x.update_except({self.as_attr: frozenset(group)}))
        rt.stats.output_tuples += len(out)
        return frozenset(out)


class SortMergeJoin(PlanNode):
    """Single-key sort-merge join (plain join kind only) — one of the
    paper's 'various efficient join implementations', used by the ablation
    benchmark."""

    label = "SortMergeJoin"

    def __init__(
        self,
        lvar: str,
        rvar: str,
        left_key: A.Expr,
        right_key: A.Expr,
        residual: A.Expr,
        left: PlanNode,
        right: PlanNode,
    ) -> None:
        self.lvar = lvar
        self.rvar = rvar
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def execute(self, rt: ExecRuntime) -> frozenset:
        from repro.datamodel.values import sort_key

        env: Dict[str, Value] = {}

        def keyed(rows, var, key_expr):
            pairs = []
            for row in rows:
                env[var] = row
                key = rt.eval(key_expr, env)
                rt.stats.comparisons += 1
                pairs.append((key, row))
            pairs.sort(key=lambda kv: sort_key(kv[0]))
            return pairs

        left = keyed(self.left.execute(rt), self.lvar, self.left_key)
        right = keyed(self.right.execute(rt), self.rvar, self.right_key)
        trivial_residual = self.residual == A.Literal(True)
        out = set()
        i = j = 0
        while i < len(left) and j < len(right):
            rt.stats.comparisons += 1
            lk, rk = sort_key(left[i][0]), sort_key(right[j][0])
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                j_end = j
                while j_end < len(right) and sort_key(right[j_end][0]) == lk:
                    j_end += 1
                i_end = i
                while i_end < len(left) and sort_key(left[i_end][0]) == lk:
                    i_end += 1
                for ii in range(i, i_end):
                    for jj in range(j, j_end):
                        rt.stats.tuples_visited += 1
                        env[self.lvar] = left[ii][1]
                        env[self.rvar] = right[jj][1]
                        if trivial_residual or rt.eval_pred(self.residual, env):
                            out.add(concat(left[ii][1], right[jj][1]))
                i, j = i_end, j_end
        rt.stats.output_tuples += len(out)
        return frozenset(out)


class CartesianProduct(PlanNode):
    label = "CartesianProduct"

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def execute(self, rt: ExecRuntime) -> frozenset:
        left = self.left.execute(rt)
        right = self.right.execute(rt)
        out = set()
        for x in left:
            for y in right:
                rt.stats.tuples_visited += 1
                out.add(concat(x, y))
        return frozenset(out)


class DivisionOp(PlanNode):
    """Hash-grouped relational division."""

    label = "Division"

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def execute(self, rt: ExecRuntime) -> frozenset:
        left = self.left.execute(rt)
        right = self.right.execute(rt)
        if not left:
            return frozenset()
        divisor_attrs: Optional[frozenset] = None
        for y in right:
            divisor_attrs = y.attributes
            break
        if divisor_attrs is None:
            return left
        groups: Dict[VTuple, set] = {}
        for item in left:
            rt.stats.tuples_visited += 1
            key = item.drop(divisor_attrs)
            groups.setdefault(key, set()).add(item.subscript(divisor_attrs))
        return frozenset(key for key, seen in groups.items() if seen >= right)


class MaterializeOp(PlanNode):
    """The assembly implementation of the materialize operator ([BlMG93]).

    Collects the oids referenced by a whole batch of tuples, fetches them
    page-clustered (:meth:`Database.fetch_many` charges each page once),
    then attaches the objects.  Falls back to uncounted logical deref on
    stores without paging.
    """

    label = "Materialize(assembly)"

    def __init__(self, attr: str, as_attr: str, class_name: str, child: PlanNode) -> None:
        self.attr = attr
        self.as_attr = as_attr
        self.class_name = class_name
        self.child = child

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"{self.attr} -> {self.as_attr} : {self.class_name}"

    def execute(self, rt: ExecRuntime) -> frozenset:
        rows = list(self.child.execute(rt))
        all_oids: List = []
        shapes: List[Tuple[VTuple, object]] = []
        for row in rows:
            ref = row[self.attr]
            if isinstance(ref, frozenset):
                members = sorted(ref, key=lambda o: (o.class_name, o.number))
                shapes.append((row, members))
                all_oids.extend(members)
            else:
                shapes.append((row, ref))
                all_oids.append(ref)
        rt.stats.oid_derefs += len(all_oids)
        if hasattr(rt.db, "fetch_many"):
            fetched = rt.db.fetch_many(all_oids)
        else:
            fetched = [rt.db.deref(oid) for oid in all_oids]
        objects = dict(zip(all_oids, fetched))
        out = set()
        for row, ref in shapes:
            if isinstance(ref, list):
                attached: Value = frozenset(objects[oid] for oid in ref)
            else:
                attached = objects[ref]
            out.add(row.update_except({self.as_attr: attached}))
        return frozenset(out)
