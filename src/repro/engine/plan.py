"""Physical plan operators.

"It is better to transform nested queries into join queries, because join
queries can be implemented in many different ways" (Section 7) — this
module is the "many different ways": hash and sort-merge implementations of
the join family, hash nestjoin, membership joins for ``e ∈ x.parts``-style
predicates, plus the pipeline operators (scan, filter, map, nest, unnest,
project...).

Streaming execution
===================

Operators execute Volcano-style: every node implements
``iterate(rt) -> Iterator[Value]``, the *streaming* interface, and
``execute(rt) -> frozenset`` is a thin materializing wrapper
(``frozenset(iterate(rt))``) kept for the planner API and set-typed
consumers.  Tuples flow one at a time through pipeline operators, so a
query like "first supplier with a red part" stops scanning as soon as the
answer is produced, and no intermediate result is ever materialized unless
an operator genuinely needs all of its input at once.

Which operators pipeline, and which break:

* **pipeline** (tuple-at-a-time, O(1) buffering): :class:`Scan`,
  :class:`IndexScan`, :class:`Filter`, :class:`MapOp`, :class:`ProjectOp`,
  :class:`RenameOp`, :class:`UnnestOp`, :class:`FlattenOp`, the union side
  of :class:`SetOp`, the probe side of the whole hash-join family, and
  **both** sides of :class:`IndexNestedLoopJoin` (the persistent catalog
  index replaces the build phase entirely);
* **pipeline breakers** (must consume an input fully before emitting):
  :class:`NestOp` (grouping), :class:`SetOp` intersect/difference (right
  side), the **build side** of :class:`NestedLoopJoin`,
  :class:`HashJoinBase` (right by default; the cost-based planner may
  build left for plain joins), :class:`MembershipHashJoin` and
  :class:`CartesianProduct`, both sides of :class:`SortMergeJoin` and
  :class:`DivisionOp`, and :class:`MaterializeOp` (batched page-clustered
  fetching is the point of assembly).

Under cost-based planning every node additionally carries ``est_rows`` /
``est_cost`` annotations which ``explain()`` renders as
``(rows≈…, cost≈…)``, so plan choices are inspectable and testable.

Every break is counted in ``stats.pipeline_breaks`` at runtime and marked
statically by ``explain()``::

    >>> print(plan.explain())
    HashJoin(semijoin) [d.supplier = s.oid] <builds right>
      Scan [DELIVERY]
      Scan [SUPPLIER]

Parameter expressions (predicates, hash keys, nestjoin result functions)
are compiled once per operator into Python closures by
:mod:`repro.engine.compile` instead of being re-interpreted per tuple;
``ExecRuntime(compile_exprs=False)`` restores interpreter evaluation and
``ExecRuntime(materialized=True)`` restores operand-at-a-time
materialization — together they reproduce the pre-streaming engine, which
is what ``benchmarks/run_bench.py`` measures the streaming engine against.

Every node executes against an :class:`ExecRuntime` carrying the database,
an :class:`~repro.engine.interpreter.Interpreter` for fallback expression
evaluation, a :class:`~repro.engine.compile.Compiler`, and the shared
:class:`~repro.engine.stats.Stats` counters.  ``explain()`` renders the
physical tree.

Vectorized batch execution (PR 8)
=================================

Every node additionally implements ``iterate_batches(rt) ->
Iterator[Batch]``, the *batch-at-a-time* interface: fixed-capacity
columnar chunks of tuples instead of single tuples.
``ExecRuntime(batch_size=N)`` selects the mode — ``execute`` then drains
batches instead of the tuple iterator.  The hot pipeline operators
(:class:`Scan`, :class:`Filter`, :class:`MapOp`, :class:`ProjectOp`, the
build-right :class:`HashJoinBase` family) override it natively, applying
:mod:`repro.engine.compile`'s vectorized kernels over whole chunks; every
other operator inherits the default, which chunks its own tuple
``iterate`` — so batch mode is always available and always oracle-equal,
operator by operator.  Expression forms the vectorizing compiler does not
cover fall back to the tuple-wise closure per batch element, counted in
``stats.vector_fallbacks``; chunks produced are counted in
``stats.batches_emitted``.  ``explain(vectorized=True)`` marks which
operators would run native kernels (``<vec>``) versus per-element
fallback (``<vec:fallback>``); the default rendering is unchanged.

Counter contract in batch mode: successful batches produce exactly the
tuple engine's totals (the kernels bulk-count, and short-circuit
semantics are preserved — see :mod:`repro.engine.compile`).  On an
erroring batch the error itself is exactly the tuple engine's (the batch
re-runs element-wise), but per-tuple counters such as ``tuples_visited``
are bulk-charged per chunk, so mid-batch failure counter *snapshots* may
run ahead of the tuple engine's — a documented simplification.
"""

from __future__ import annotations

import os
import time
from itertools import chain, compress, islice
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.adl import ast as A
from repro.datamodel.errors import EvaluationError, MissingAttributeError, PlanError
from repro.datamodel.values import Value, VTuple, concat
from repro.engine.compile import BatchKernel, Compiler, vector_covered
from repro.engine.cost import format_estimate
from repro.engine.interpreter import Interpreter
from repro.engine.stats import Stats

#: Default rows per columnar chunk when ``batch_size`` is truthy but a
#: concrete capacity was not chosen.  Big enough to amortize per-batch
#: dispatch, small enough to keep early-exit consumers responsive.
DEFAULT_BATCH_SIZE = 256


class Batch:
    """A columnar chunk: an ordered list of tuples plus lazily-built
    per-attribute value lists.

    ``rows`` is the authoritative payload (operators and the shard tier
    ship it directly); :meth:`column` materializes one attribute's values
    across the chunk on first request and caches the list, so repeated
    kernel passes over the same attribute pay the gather once.
    """

    __slots__ = ("rows", "_columns")

    def __init__(self, rows: List[Value]) -> None:
        self.rows = rows
        self._columns: Optional[Dict[str, List[Value]]] = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"Batch({len(self.rows)} rows)"

    def column(self, attr: str) -> List[Value]:
        """The per-attribute value list for ``attr``, built and cached on
        first access."""
        columns = self._columns
        if columns is None:
            columns = self._columns = {}
        col = columns.get(attr)
        if col is None:
            col = columns[attr] = [row[attr] for row in self.rows]
        return col


class ExecRuntime:
    """Execution context shared by all operators of one plan run.

    The runtime owns a single :class:`Interpreter` and a single
    :class:`~repro.engine.compile.Compiler`; operators *reuse* them via
    :meth:`eval` / :meth:`compiled` rather than constructing their own, so
    expression compilation happens once per operator per run and all work
    counters land in one :class:`Stats` bundle.

    ``materialized=True`` makes every operator consume its children through
    ``execute`` (full ``frozenset`` per edge) instead of streaming —
    the pre-Volcano engine, kept as the benchmark baseline.
    ``compile_exprs=False`` routes parameter expressions through the
    interpreter instead of compiled closures.
    """

    def __init__(
        self,
        db,
        stats: Optional[Stats] = None,
        *,
        materialized: bool = False,
        compile_exprs: bool = True,
        catalog=None,
        params: Optional[Dict[str, Value]] = None,
        parallel=None,
        deadline: Optional[float] = None,
        batch_size: Optional[int] = None,
        trace=None,
    ) -> None:
        self.db = db
        # default to the database's own catalog (a Catalog registers
        # itself on its store at construction)
        self.catalog = catalog if catalog is not None else getattr(db, "catalog", None)
        self.stats = stats if stats is not None else Stats()
        #: optional :class:`repro.shard.executor.ParallelExecutor` — when
        #: set, gather exchanges ship their fragments to the worker pool
        #: instead of running them inline
        self.parallel = parallel
        #: absolute ``time.monotonic()`` deadline for this run, or ``None``.
        #: Streaming operators poll it at a coarse per-tuple granularity
        #: (see :meth:`check_deadline`); the fault-free path pays nothing —
        #: the check branch is hoisted out of every hot loop.
        self.deadline = deadline
        #: fault-tolerance events of this run (retries, degradation,
        #: breaker state) — filled by the gather's ``run_fragments`` call
        #: and surfaced on ``QueryResult.faults`` by the service
        self.fault_events: Dict[str, object] = {}
        #: prepared-statement parameter bindings for this run; ``Param``
        #: expressions resolve against it in both evaluation engines
        self.params: Dict[str, Value] = dict(params or {})
        #: the visibility epoch this run is pinned to, or ``None`` for an
        #: unpinned (live-head) run.  Set automatically when ``db`` is an
        #: :class:`~repro.storage.store.EpochView`; partitioned operators
        #: thread it into every shipped fragment so pool workers provably
        #: read the coordinator's state (PR 7).
        self.pinned_epoch = getattr(db, "pinned_epoch", None)
        #: per-run indexes built over epoch-pinned rows when the shared
        #: catalog index was built from a different (live) snapshot —
        #: keyed ``(extent, attr, multi)``; never written to the catalog
        self._transient_indexes: Dict[Tuple[str, str, bool], object] = {}
        self.interpreter = Interpreter(db, self.stats, self.params)
        self.materialized = materialized
        self.compile_exprs = compile_exprs
        #: rows per columnar chunk; a truthy value selects batch-at-a-time
        #: execution (``execute`` drains ``iterate_batches``), ``None``/0
        #: keeps the tuple-at-a-time engine
        self.batch_size = batch_size
        #: optional :class:`repro.obs.trace.TraceRecorder` — when set,
        #: every operator's stream is metered (rows/batches out, wall
        #: time, fill time).  Follows the deadline discipline: operators
        #: test ``rt.trace is None`` once per open (see
        #: :meth:`PlanNode.stream`), so untraced hot loops are
        #: byte-identical to the pre-tracing engine.  ``REPRO_TRACE=1``
        #: in the environment auto-attaches a recorder to every runtime —
        #: the CI trace-parity job's hook, mirroring ``REPRO_FAULT_PLAN``.
        if trace is None and os.environ.get("REPRO_TRACE"):
            from repro.obs.trace import TraceRecorder

            trace = TraceRecorder()
        self.trace = trace
        self.compiler = Compiler(db, self.stats, self.interpreter, self.params)
        self._compiled: Dict[int, Tuple[A.Expr, Callable]] = {}
        self._compiled_preds: Dict[int, Tuple[A.Expr, Callable]] = {}
        self._batch_fns: Dict[Tuple[int, str], Tuple[A.Expr, BatchKernel]] = {}
        self._batch_preds: Dict[Tuple[int, str], Tuple[A.Expr, BatchKernel]] = {}

    # -- cancellation -------------------------------------------------------
    def check_deadline(self) -> None:
        """Raise :class:`~repro.datamodel.errors.QueryTimeoutError` when
        this run's deadline has passed.  Cheap enough to call from gated
        hot-loop sites (every N tuples); callers hoist the ``deadline is
        None`` test so fault-free runs never reach it."""
        if self.deadline is not None and time.monotonic() >= self.deadline:
            from repro.datamodel.errors import QueryTimeoutError

            raise QueryTimeoutError("query exceeded its deadline")

    # -- expression evaluation ---------------------------------------------
    # Both caches are keyed by id(expr) and store the expression alongside
    # its closure: the strong reference keeps the expression alive, so a
    # garbage-collected expression's id can never be reused by a different
    # expression and alias someone else's closure.

    def compiled(self, expr: A.Expr) -> Callable[[Dict[str, Value]], Value]:
        """The closure for ``expr`` — compiled once per runtime, or an
        interpreter thunk when ``compile_exprs`` is off."""
        entry = self._compiled.get(id(expr))
        if entry is None:
            if self.compile_exprs:
                fn = self.compiler.compile(expr)
            else:
                interpreter = self.interpreter
                fn = lambda env, _e=expr: interpreter.eval(_e, env)  # noqa: E731
            self._compiled[id(expr)] = entry = (expr, fn)
        return entry[1]

    def compiled_pred(self, expr: A.Expr) -> Callable[[Dict[str, Value]], bool]:
        """Like :meth:`compiled` but with ``eval_pred`` semantics: counts
        ``predicate_evals`` and rejects non-boolean results."""
        entry = self._compiled_preds.get(id(expr))
        if entry is None:
            if self.compile_exprs:
                fn = self.compiler.compile_pred(expr)
            else:
                fn = lambda env, _e=expr: self.eval_pred(_e, env)  # noqa: E731
            self._compiled_preds[id(expr)] = entry = (expr, fn)
        return entry[1]

    # -- vectorized batch kernels (PR 8) ------------------------------------
    # Cached like the tuple closures, keyed by (id(expr), var).  When the
    # expression is not vector-covered — or expression compilation is off —
    # the cached kernel applies the tuple-wise closure per batch element
    # and counts one ``vector_fallbacks`` per batch, so uncovered forms are
    # observable, never silent.

    def batch_fn(self, expr: A.Expr, var: str) -> BatchKernel:
        """A batch kernel mapping rows (bound to ``var``) through ``expr``."""
        entry = self._batch_fns.get((id(expr), var))
        if entry is None:
            kernel = self.compiler.compile_batch(expr, var) if self.compile_exprs else None
            if kernel is None:
                kernel = self._fallback_kernel(self.compiled(expr), var)
            self._batch_fns[(id(expr), var)] = entry = (expr, kernel)
        return entry[1]

    def batch_pred(self, expr: A.Expr, var: str) -> BatchKernel:
        """Predicate variant of :meth:`batch_fn` (``eval_pred`` semantics)."""
        entry = self._batch_preds.get((id(expr), var))
        if entry is None:
            kernel = self.compiler.compile_batch_pred(expr, var) if self.compile_exprs else None
            if kernel is None:
                kernel = self._fallback_kernel(self.compiled_pred(expr), var)
            self._batch_preds[(id(expr), var)] = entry = (expr, kernel)
        return entry[1]

    def _fallback_kernel(self, row_fn: Callable, var: str) -> BatchKernel:
        stats = self.stats

        def kernel(rows: List[Value]) -> List[Value]:
            stats.vector_fallbacks += 1
            env: Dict[str, Value] = {}
            out = []
            for row in rows:
                env[var] = row
                out.append(row_fn(env))
            return out

        return kernel

    def eval(self, expr: A.Expr, env: Optional[Dict[str, Value]] = None) -> Value:
        return self.compiled(expr)(env if env is not None else {})

    def eval_pred(self, expr: A.Expr, env: Dict[str, Value]) -> bool:
        self.stats.predicate_evals += 1
        value = self.compiled(expr)(env)
        if not isinstance(value, bool):
            raise EvaluationError(f"predicate produced non-boolean {value!r}")
        return value


class PlanNode:
    """Base class of physical operators.

    Subclasses implement :meth:`iterate`; :meth:`execute` materializes it.
    Children are consumed through :meth:`_input` (streams, unless the
    runtime is in ``materialized`` mode) or :meth:`_consume` (a declared
    pipeline break: always materializes, counted in
    ``stats.pipeline_breaks``).
    """

    #: Short operator label used by ``explain``.
    label = "plan"

    #: Static pipeline-break marker rendered by ``explain`` (e.g. "builds
    #: right", "groups input"); empty for fully-streaming operators.
    break_note = ""

    #: Optimizer annotations: estimated output rows and cumulative cost,
    #: set by the cost-based planner and rendered by ``explain`` — ``None``
    #: under heuristic planning.
    est_rows: Optional[float] = None
    est_cost: Optional[float] = None

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        raise NotImplementedError

    def iterate_batches(self, rt: ExecRuntime) -> Iterator[Batch]:
        """Batch-at-a-time interface: yield columnar :class:`Batch` chunks.

        The default chunks this operator's own tuple ``iterate`` — correct
        for every operator by construction; the hot pipeline operators
        override it with native vectorized loops.
        """
        size = rt.batch_size or DEFAULT_BATCH_SIZE
        stats = rt.stats
        it = self.iterate(rt)
        while True:
            rows = list(islice(it, size))
            if not rows:
                return
            stats.batches_emitted += 1
            yield Batch(rows)

    def stream(self, rt: ExecRuntime) -> Iterator[Value]:
        """This operator's tuple stream, metered when the runtime traces.

        The trace test runs once per operator *open*, never per row —
        untraced runs get the raw ``iterate`` generator back, so the hot
        loops are byte-identical to the pre-tracing engine (the PR-6
        hoisted-check discipline applied to observability).
        """
        trace = rt.trace
        if trace is None:
            return self.iterate(rt)
        return trace.wrap_iter(self, self.iterate(rt))

    def stream_batches(self, rt: ExecRuntime) -> Iterator[Batch]:
        """Batch analogue of :meth:`stream`."""
        trace = rt.trace
        if trace is None:
            return self.iterate_batches(rt)
        return trace.wrap_batches(self, self.iterate_batches(rt))

    def execute(self, rt: ExecRuntime) -> frozenset:
        if rt.batch_size:
            return frozenset(
                chain.from_iterable(batch.rows for batch in self.stream_batches(rt))
            )
        return frozenset(self.stream(rt))

    def _input(self, child: "PlanNode", rt: ExecRuntime):
        """Stream a child (or materialize it, in baseline mode)."""
        if rt.materialized:
            return child.execute(rt)
        return child.stream(rt)

    def _consume(self, child: "PlanNode", rt: ExecRuntime) -> frozenset:
        """A pipeline break: this operator needs the whole child result."""
        rt.stats.pipeline_breaks += 1
        return child.execute(rt)

    def children(self) -> Sequence["PlanNode"]:
        return ()

    def describe(self) -> str:
        return ""

    def vector_note(self) -> str:
        """Marker rendered by ``explain(vectorized=True)``: ``"vec"`` for
        operators that run native batch kernels, ``"vec:fallback"`` for
        batch-native operators whose parameter expressions the vectorizing
        compiler does not cover, ``""`` for operators that batch by
        chunking their tuple iterator.  Opt-in only — the default
        ``explain()`` text is byte-identical to the tuple engine's."""
        return ""

    def explain(
        self,
        indent: str = "",
        *,
        vectorized: bool = False,
        annotate: Optional[Callable[["PlanNode"], str]] = None,
    ) -> str:
        """Render the physical tree.

        ``annotate`` is the one extension point for per-node suffixes:
        when given, ``annotate(node)`` replaces the static
        ``format_estimate`` text — EXPLAIN ANALYZE passes the trace
        recorder's est-vs-actual annotation through here rather than
        maintaining a second string-builder.
        """
        detail = self.describe()
        line = f"{indent}{self.label}" + (f" [{detail}]" if detail else "")
        if self.break_note:
            line += f" <{self.break_note}>"
        if vectorized:
            note = self.vector_note()
            if note:
                line += f" <{note}>"
        suffix = (
            annotate(self)
            if annotate is not None
            else format_estimate(self.est_rows, self.est_cost)
        )
        if suffix:
            line += f" {suffix}"
        parts = [line]
        parts.extend(
            child.explain(indent + "  ", vectorized=vectorized, annotate=annotate)
            for child in self.children()
        )
        return "\n".join(parts)

    def operators(self):
        yield self
        for child in self.children():
            yield from child.operators()


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


class Scan(PlanNode):
    """Full extent scan — charges page I/O on paged stores.

    Streams page by page: a consumer that stops early (e.g. a semijoin
    probe that found its match) never touches the remaining pages.
    """

    label = "Scan"

    def __init__(self, extent: str) -> None:
        self.extent = extent

    def describe(self) -> str:
        return self.extent

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        source = rt.db.scan(self.extent) if hasattr(rt.db, "scan") else rt.db.extent(self.extent)
        if rt.deadline is None:
            yield from source
            return
        # cancellation point: scans feed (almost) every pipeline, so a
        # coarse per-64-tuple poll here bounds how far past its deadline
        # any plan can run — including nested-loop joins whose probe side
        # streams through this loop
        for n, row in enumerate(source):
            if not (n & 63):
                rt.check_deadline()
            yield row

    def iterate_batches(self, rt: ExecRuntime) -> Iterator[Batch]:
        # native: slice the extent stream directly into chunks — no
        # per-tuple generator resumption between the store and the consumer
        size = rt.batch_size or DEFAULT_BATCH_SIZE
        stats = rt.stats
        check = rt.check_deadline if rt.deadline is not None else None
        # page-wise fast path (PR 8): a paged store hands whole page
        # record lists over (same I/O charges, bulk-counted); epoch views
        # refuse the probe so pinned reads stay on the snapshot path
        scan_pages = getattr(rt.db, "scan_pages", None)
        if scan_pages is not None:
            buf: List[Value] = []
            for records in scan_pages(self.extent):
                if check is not None:
                    check()
                buf.extend(records)
                while len(buf) >= size:
                    stats.batches_emitted += 1
                    yield Batch(buf[:size])
                    buf = buf[size:]
            if buf:
                stats.batches_emitted += 1
                yield Batch(buf)
            return
        source = rt.db.scan(self.extent) if hasattr(rt.db, "scan") else rt.db.extent(self.extent)
        it = iter(source)
        while True:
            if check is not None:
                check()
            rows = list(islice(it, size))
            if not rows:
                return
            stats.batches_emitted += 1
            yield Batch(rows)

    def vector_note(self) -> str:
        return "vec"

    def execute(self, rt: ExecRuntime) -> frozenset:
        # overrides the base wrapper to return the store's cached extent
        # frozenset directly instead of rebuilding a copy through iterate().
        # A traced run keeps the fast path's counter profile (this path
        # charges nothing) but still records the scan's actual rows.
        trace = rt.trace
        start = time.perf_counter() if trace is not None else 0.0
        if hasattr(rt.db, "scan"):
            result = frozenset(rt.db.scan(self.extent))
        else:
            result = rt.db.extent(self.extent)
        if trace is not None:
            trace.record_result(self, len(result), time.perf_counter() - start)
        return result


def _catalog_index(rt: ExecRuntime, extent: str, attr: str, index_name: str):
    """Resolve a registered index at runtime, rebuilding a stale snapshot.

    The catalog's indexes are eager snapshots of the extent value they
    were built from.  Stores hand out a *fresh* ``frozenset`` whenever an
    extent changes (inserts invalidate the paged store's cache,
    ``set_extent`` replaces the in-memory one), so comparing the current
    extent value by identity detects staleness — including same-size
    replacements — and the index is rebuilt through the catalog.
    """
    if rt.catalog is None:
        raise PlanError(
            f"plan uses index {index_name!r} but the runtime has no catalog"
        )
    named = rt.catalog.index_named(index_name)
    if named is not None and (named.extent, named.attr) != (extent, attr):
        named = None  # the name was re-pointed since planning; re-resolve
    if named is None:
        named = rt.catalog.index_on(extent, attr)
    if named is None:
        raise PlanError(f"index {index_name!r} on {extent}.{attr} is not registered")
    if hasattr(rt.db, "extent") and rt.db.extent(extent) is not named.source_rows:
        if rt.pinned_epoch is not None:
            # Epoch-pinned run reading a historical snapshot: the shared
            # catalog index tracks the live head, so rebuilding it here
            # would either poison the catalog with stale rows or (rebuilt
            # from the view) still mismatch the head.  Build a private
            # per-run index over the pinned rows instead; the catalog is
            # never mutated from a historical read.
            cache_key = (extent, named.attr, named.multi)
            transient = rt._transient_indexes.get(cache_key)
            if transient is None:
                from repro.storage.index import HashIndex

                attr_name = named.attr
                transient = HashIndex(
                    rt.db.extent(extent),
                    key=lambda row: row[attr_name],
                    multi=named.multi,
                )
                rt._transient_indexes[cache_key] = transient
            return transient
        named = rt.catalog.create_index(named.extent, named.attr, named.name, named.multi)
    return named


class IndexScan(PlanNode):
    """Selection via a registered hash index: ``σ[x : x.attr = k](EXTENT)``
    becomes one probe of the persistent index instead of a full scan.

    ``key_expr`` must be closed (no free variables) — it is evaluated once.
    Fully streaming, no pipeline break, and the extent's non-matching pages
    are never touched.
    """

    label = "IndexScan"

    def __init__(self, extent: str, attr: str, key_expr: A.Expr, index_name: str) -> None:
        self.extent = extent
        self.attr = attr
        self.key_expr = key_expr
        self.index_name = index_name

    def describe(self) -> str:
        from repro.adl.pretty import pretty

        return f"{self.extent}.{self.attr} = {pretty(self.key_expr)} via {self.index_name}"

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        index = _catalog_index(rt, self.extent, self.attr, self.index_name)
        key = rt.eval(self.key_expr)
        rt.stats.index_probes += 1
        for row in index.lookup(key):
            rt.stats.tuples_visited += 1
            yield row


class EvalExpr(PlanNode):
    """Fallback: evaluate an arbitrary ADL expression with the interpreter.

    This is where non-set-oriented residue executes — by nested loops,
    exactly as the paper's option 4 prescribes.
    """

    label = "Eval"

    def __init__(self, expr: A.Expr) -> None:
        self.expr = expr

    def describe(self) -> str:
        from repro.adl.pretty import pretty

        text = pretty(self.expr)
        return text if len(text) <= 60 else text[:57] + "..."

    def _value(self, rt: ExecRuntime) -> frozenset:
        value = rt.eval(self.expr)
        if not isinstance(value, frozenset):
            raise PlanError(f"plan leaf produced a non-set value: {value!r}")
        return value

    def execute(self, rt: ExecRuntime) -> frozenset:
        trace = rt.trace
        start = time.perf_counter() if trace is not None else 0.0
        value = self._value(rt)
        if trace is not None:
            trace.record_result(self, len(value), time.perf_counter() - start)
        return value

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        # raw value here: when traced, the stream() wrapper does the
        # metering, so routing through execute() would double-count
        yield from self._value(rt)


# ---------------------------------------------------------------------------
# Pipeline operators
# ---------------------------------------------------------------------------


class Filter(PlanNode):
    label = "Filter"

    def __init__(self, var: str, pred: A.Expr, child: PlanNode) -> None:
        self.var = var
        self.pred = pred
        self.child = child

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        from repro.adl.pretty import pretty

        return f"{self.var}: {pretty(self.pred)}"

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        pred = rt.compiled_pred(self.pred)
        env: Dict[str, Value] = {}
        if rt.deadline is None:
            for item in self._input(self.child, rt):
                rt.stats.tuples_visited += 1
                env[self.var] = item
                if pred(env):
                    yield item
            return
        # deadline runs poll every 64 input tuples (branch hoisted so the
        # fault-free loop above is untouched)
        for n, item in enumerate(self._input(self.child, rt)):
            if not (n & 63):
                rt.check_deadline()
            rt.stats.tuples_visited += 1
            env[self.var] = item
            if pred(env):
                yield item

    def iterate_batches(self, rt: ExecRuntime) -> Iterator[Batch]:
        kernel = rt.batch_pred(self.pred, self.var)
        stats = rt.stats
        check = rt.check_deadline if rt.deadline is not None else None
        for batch in self.child.stream_batches(rt):
            if check is not None:
                check()
            rows = batch.rows
            stats.tuples_visited += len(rows)
            mask = kernel(rows)
            kept = list(compress(rows, mask))
            if kept:
                stats.batches_emitted += 1
                yield Batch(kept)

    def vector_note(self) -> str:
        return "vec" if vector_covered(self.pred, self.var) else "vec:fallback"


class MapOp(PlanNode):
    label = "Map"

    def __init__(self, var: str, body: A.Expr, child: PlanNode) -> None:
        self.var = var
        self.body = body
        self.child = child

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        from repro.adl.pretty import pretty

        return f"{self.var}: {pretty(self.body)}"

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        body = rt.compiled(self.body)
        env: Dict[str, Value] = {}
        for item in self._input(self.child, rt):
            rt.stats.tuples_visited += 1
            env[self.var] = item
            yield body(env)

    def iterate_batches(self, rt: ExecRuntime) -> Iterator[Batch]:
        kernel = rt.batch_fn(self.body, self.var)
        stats = rt.stats
        for batch in self.child.stream_batches(rt):
            rows = batch.rows
            stats.tuples_visited += len(rows)
            stats.batches_emitted += 1
            yield Batch(kernel(rows))

    def vector_note(self) -> str:
        return "vec" if vector_covered(self.body, self.var) else "vec:fallback"


class ProjectOp(PlanNode):
    label = "Project"

    def __init__(self, attrs: Tuple[str, ...], child: PlanNode) -> None:
        self.attrs = attrs
        self.child = child

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return ", ".join(self.attrs)

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        for item in self._input(self.child, rt):
            rt.stats.tuples_visited += 1
            yield item.subscript(self.attrs)

    def iterate_batches(self, rt: ExecRuntime) -> Iterator[Batch]:
        attrs = self.attrs
        stats = rt.stats
        for batch in self.child.stream_batches(rt):
            rows = batch.rows
            stats.tuples_visited += len(rows)
            stats.batches_emitted += 1
            yield Batch([item.subscript(attrs) for item in rows])

    def vector_note(self) -> str:
        return "vec"


class RenameOp(PlanNode):
    label = "Rename"

    def __init__(self, renames: Tuple[Tuple[str, str], ...], child: PlanNode) -> None:
        self.renames = renames
        self.child = child

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return ", ".join(f"{a}->{b}" for a, b in self.renames)

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        for item in self._input(self.child, rt):
            fields = dict(item)
            for old, new in self.renames:
                if old not in fields:
                    raise MissingAttributeError(
                        f"rename of missing attribute {old!r}; "
                        f"attributes are {sorted(fields)}"
                    )
                fields[new] = fields.pop(old)
            yield VTuple(fields)


class UnnestOp(PlanNode):
    label = "Unnest"

    def __init__(self, attr: str, child: PlanNode) -> None:
        self.attr = attr
        self.child = child

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return self.attr

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        for item in self._input(self.child, rt):
            members = item[self.attr]
            rest = item.drop((self.attr,))
            for member in members:
                rt.stats.tuples_visited += 1
                yield concat(member, rest)


class NestOp(PlanNode):
    label = "Nest"
    break_note = "groups input"

    def __init__(self, attrs: Tuple[str, ...], as_attr: str, child: PlanNode) -> None:
        self.attrs = attrs
        self.as_attr = as_attr
        self.child = child

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"{', '.join(self.attrs)} -> {self.as_attr}"

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        groups: Dict[VTuple, set] = {}
        for item in self._consume(self.child, rt):
            rt.stats.tuples_visited += 1
            key = item.drop(self.attrs)
            groups.setdefault(key, set()).add(item.subscript(self.attrs))
        for key, group in groups.items():
            yield key.update_except({self.as_attr: frozenset(group)})

    def iterate_batches(self, rt: ExecRuntime) -> Iterator[Batch]:
        """Native batch path (PR 9): bulk key-kernel group build.

        The grouping key's attributes are fixed by the first input row, so
        each key column is extracted with one PR-8 ``AttrAccess`` batch
        kernel call per batch (C-speed column pulls) and rows are grouped
        under plain value tuples — no per-row ``drop`` allocation.  Rows
        whose attribute set differs from the first row's (possible only
        for heterogeneous inputs) fall back to the exact tuple-engine
        grouping; their keys differ from every uniform key by
        construction, so the two group maps never alias.
        """
        size = rt.batch_size or DEFAULT_BATCH_SIZE
        stats = rt.stats
        stats.pipeline_breaks += 1
        nest_attrs = self.attrs
        groups: Dict[Tuple[Value, ...], set] = {}  # uniform-shape rows
        odd_groups: Dict[VTuple, set] = {}  # off-shape rows (exact path)
        shape = None
        key_attrs: Tuple[str, ...] = ()
        kernels: List[BatchKernel] = []
        for batch in self.child.stream_batches(rt):
            rows = batch.rows
            stats.tuples_visited += len(rows)
            if shape is None and rows:
                shape = rows[0].attributes
                key_attrs = tuple(
                    a for a in sorted(shape) if a not in nest_attrs
                )
                if rt.compile_exprs:
                    kernels = [
                        rt.batch_fn(A.AttrAccess(A.Var("_group"), a), "_group")
                        for a in key_attrs
                    ]
            uniform = all(item.attributes == shape for item in rows)
            if kernels and uniform:
                cols = [kern(rows) for kern in kernels]
                keys = list(zip(*cols)) if cols else [()] * len(rows)
                for item, key in zip(rows, keys):
                    groups.setdefault(key, set()).add(
                        item.subscript(nest_attrs)
                    )
                continue
            for item in rows:
                if item.attributes == shape:
                    key = tuple(item[a] for a in key_attrs)
                    groups.setdefault(key, set()).add(
                        item.subscript(nest_attrs)
                    )
                else:
                    vkey = item.drop(nest_attrs)
                    odd_groups.setdefault(vkey, set()).add(
                        item.subscript(nest_attrs)
                    )
        as_attr = self.as_attr
        out: List[Value] = []
        for key, group in groups.items():
            fields = dict(zip(key_attrs, key))
            fields[as_attr] = frozenset(group)
            out.append(VTuple(fields))
            if len(out) >= size:
                stats.batches_emitted += 1
                yield Batch(out)
                out = []
        for vkey, group in odd_groups.items():
            out.append(vkey.update_except({as_attr: frozenset(group)}))
            if len(out) >= size:
                stats.batches_emitted += 1
                yield Batch(out)
                out = []
        if out:
            stats.batches_emitted += 1
            yield Batch(out)

    def vector_note(self) -> str:
        # the grouping key kernels are plain attribute pulls: always covered
        return "vec"


class FlattenOp(PlanNode):
    label = "Flatten"

    def __init__(self, child: PlanNode) -> None:
        self.child = child

    def children(self):
        return (self.child,)

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        for member in self._input(self.child, rt):
            yield from member


class SetOp(PlanNode):
    """Union / intersection / difference.

    Union streams both sides; intersect/difference stream the left but must
    materialize the right operand (the membership test needs all of it).
    """

    def __init__(self, kind: str, left: PlanNode, right: PlanNode) -> None:
        if kind not in ("union", "intersect", "difference"):
            raise PlanError(f"unknown set operation {kind!r}")
        self.kind = kind
        self.left = left
        self.right = right
        self.label = f"SetOp({kind})"
        if kind != "union":
            self.break_note = "materializes right"

    def children(self):
        return (self.left, self.right)

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        if self.kind == "union":
            yield from self._input(self.left, rt)
            yield from self._input(self.right, rt)
            return
        right = self._consume(self.right, rt)
        if self.kind == "intersect":
            for item in self._input(self.left, rt):
                if item in right:
                    yield item
        else:
            for item in self._input(self.left, rt):
                if item not in right:
                    yield item


# ---------------------------------------------------------------------------
# Join family — nested loop fallbacks
# ---------------------------------------------------------------------------

JOIN_KINDS = ("join", "semijoin", "antijoin", "outerjoin", "nestjoin")


def _join_tail(
    kind: str,
    x: VTuple,
    matched: bool,
    group,
    null_pad: VTuple,
    as_attr: Optional[str],
) -> Optional[Value]:
    """The per-left-tuple emission after match iteration, shared by the
    join family's nested-loop, hash, membership and index
    implementations: semijoin/antijoin emit the bare left tuple on (no)
    match, outerjoin null-pads dangling tuples, nestjoin always attaches
    its collected group.  ``None`` means "emit nothing" (plain joins
    already emitted pairs during iteration)."""
    if kind == "semijoin":
        return x if matched else None
    if kind == "antijoin":
        return None if matched else x
    if kind == "outerjoin":
        return None if matched else concat(x, null_pad)
    if kind == "nestjoin":
        return x.update_except({as_attr: frozenset(group)})
    return None


class NestedLoopJoin(PlanNode):
    """Generic nested-loop implementation of the whole join family.

    The baseline the paper wants to escape; kept as the fallback for
    non-equi predicates and as the comparison point in benchmarks.  The
    left operand streams; the right operand is materialized once (it is
    re-iterated per left tuple).
    """

    break_note = "materializes right"

    def __init__(
        self,
        kind: str,
        lvar: str,
        rvar: str,
        pred: A.Expr,
        left: PlanNode,
        right: PlanNode,
        as_attr: Optional[str] = None,
        result: Optional[A.Expr] = None,
        right_attrs: Tuple[str, ...] = (),
    ) -> None:
        if kind not in JOIN_KINDS:
            raise PlanError(f"unknown join kind {kind!r}")
        self.kind = kind
        self.lvar = lvar
        self.rvar = rvar
        self.pred = pred
        self.left = left
        self.right = right
        self.as_attr = as_attr
        self.result = result
        self.right_attrs = right_attrs
        self.label = f"NestedLoop({kind})"

    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        from repro.adl.pretty import pretty

        return f"{self.lvar},{self.rvar}: {pretty(self.pred)}"

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        right = self._consume(self.right, rt)
        pred = rt.compiled_pred(self.pred)
        result = rt.compiled(self.result) if self.result is not None else None
        env: Dict[str, Value] = {}
        null_pad = VTuple({a: None for a in self.right_attrs})
        kind = self.kind
        # the O(|L|*|R|) loop is the engine's worst case — check the
        # deadline once per outer tuple (hoisted: free when none is set)
        check = rt.check_deadline if rt.deadline is not None else None
        for x in self._input(self.left, rt):
            if check is not None:
                check()
            env[self.lvar] = x
            matched = False
            group = set()
            for y in right:
                rt.stats.tuples_visited += 1
                env[self.rvar] = y
                if pred(env):
                    matched = True
                    if kind == "join" or kind == "outerjoin":
                        rt.stats.output_tuples += 1
                        yield concat(x, y)
                    elif kind == "semijoin":
                        break
                    elif kind == "nestjoin":
                        group.add(result(env))
            tail = _join_tail(kind, x, matched, group, null_pad, self.as_attr)
            if tail is not None:
                rt.stats.output_tuples += 1
                yield tail


# ---------------------------------------------------------------------------
# Join family — hash implementations
# ---------------------------------------------------------------------------


class HashJoinBase(PlanNode):
    """Shared machinery: build a hash table on one operand's key
    expressions, probe with the other's; a residual predicate filters
    candidate pairs.  The build side is the pipeline break; the probe side
    streams.

    ``build_side`` defaults to ``"right"`` (the PR-1 heuristic).  The
    cost-based planner may flip it to ``"left"`` when the left operand is
    the smaller input — only for the symmetric plain ``join`` kind, since
    semijoin/antijoin/outerjoin/nestjoin semantics are anchored to the
    left operand surviving tuple-at-a-time.
    """

    def __init__(
        self,
        kind: str,
        lvar: str,
        rvar: str,
        left_keys: Tuple[A.Expr, ...],
        right_keys: Tuple[A.Expr, ...],
        residual: A.Expr,
        left: PlanNode,
        right: PlanNode,
        as_attr: Optional[str] = None,
        result: Optional[A.Expr] = None,
        right_attrs: Tuple[str, ...] = (),
        build_side: str = "right",
    ) -> None:
        if kind not in JOIN_KINDS:
            raise PlanError(f"unknown join kind {kind!r}")
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanError("hash join needs matching, non-empty key lists")
        if build_side not in ("left", "right"):
            raise PlanError(f"unknown build side {build_side!r}")
        if build_side == "left" and kind != "join":
            raise PlanError(f"build side 'left' requires a symmetric join, not {kind!r}")
        self.build_side = build_side
        self.break_note = f"builds {build_side}"
        self.kind = kind
        self.lvar = lvar
        self.rvar = rvar
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.left = left
        self.right = right
        self.as_attr = as_attr
        self.result = result
        self.right_attrs = right_attrs
        self.label = f"HashJoin({kind})"

    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        from repro.adl.pretty import pretty

        keys = " ∧ ".join(
            f"{pretty(l)} = {pretty(r)}" for l, r in zip(self.left_keys, self.right_keys)
        )
        if self.residual != A.Literal(True):
            keys += f" ; residual {pretty(self.residual)}"
        return keys

    def _build(self, rt: ExecRuntime) -> Dict[Value, List[VTuple]]:
        table: Dict[Value, List[VTuple]] = {}
        key_fns = [rt.compiled(k) for k in self.right_keys]
        env: Dict[str, Value] = {}
        for y in self._consume(self.right, rt):
            env[self.rvar] = y
            key = tuple(fn(env) for fn in key_fns)
            table.setdefault(key, []).append(y)
            rt.stats.hash_inserts += 1
        return table

    def _matcher(self, rt: ExecRuntime, table, env: Dict[str, Value]):
        key_fns = [rt.compiled(k) for k in self.left_keys]
        trivial_residual = self.residual == A.Literal(True)
        residual = None if trivial_residual else rt.compiled_pred(self.residual)
        lvar, rvar = self.lvar, self.rvar
        stats = rt.stats

        def matches(x: VTuple):
            env[lvar] = x
            key = tuple(fn(env) for fn in key_fns)
            stats.hash_probes += 1
            for y in table.get(key, ()):
                env[rvar] = y
                if residual is None or residual(env):
                    yield y

        return matches

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        if self.build_side == "left":
            yield from self._iterate_build_left(rt)
            return
        table = self._build(rt)
        env: Dict[str, Value] = {}
        matches = self._matcher(rt, table, env)
        result = rt.compiled(self.result) if self.result is not None else None
        null_pad = VTuple({a: None for a in self.right_attrs})
        kind = self.kind
        for x in self._input(self.left, rt):
            rt.stats.tuples_visited += 1
            matched = False
            if kind == "nestjoin":
                group = set()
                for y in matches(x):
                    group.add(result(env))
                rt.stats.output_tuples += 1
                yield x.update_except({self.as_attr: frozenset(group)})
                continue
            for y in matches(x):
                matched = True
                if kind in ("join", "outerjoin"):
                    rt.stats.output_tuples += 1
                    yield concat(x, y)
                elif kind == "semijoin":
                    break
            tail = _join_tail(kind, x, matched, (), null_pad, self.as_attr)
            if tail is not None:
                rt.stats.output_tuples += 1
                yield tail

    def iterate_batches(self, rt: ExecRuntime) -> Iterator[Batch]:
        if self.build_side == "left":
            # the mirrored orientation keeps the tuple loop; chunk it
            yield from PlanNode.iterate_batches(self, rt)
            return
        table = self._build_batched(rt)
        key_kernels = [rt.batch_fn(k, self.lvar) for k in self.left_keys]
        trivial_residual = self.residual == A.Literal(True)
        residual = None if trivial_residual else rt.compiled_pred(self.residual)
        result = rt.compiled(self.result) if self.result is not None else None
        null_pad = VTuple({a: None for a in self.right_attrs})
        env: Dict[str, Value] = {}
        kind = self.kind
        lvar, rvar, as_attr = self.lvar, self.rvar, self.as_attr
        stats = rt.stats
        empty = ()
        for batch in self.left.stream_batches(rt):
            rows = batch.rows
            stats.tuples_visited += len(rows)
            stats.hash_probes += len(rows)
            cols = [kern(rows) for kern in key_kernels]
            # single-key joins hash the bare key value (the build side
            # below agrees) — no per-row 1-tuple allocation
            keys = cols[0] if len(cols) == 1 else list(zip(*cols))
            if residual is None and kind == "semijoin":
                out = list(compress(rows, map(table.__contains__, keys)))
                stats.output_tuples += len(out)
                if out:
                    stats.batches_emitted += 1
                    yield Batch(out)
                continue
            if residual is None and kind == "antijoin":
                out = [x for x, k in zip(rows, keys) if k not in table]
                stats.output_tuples += len(out)
                if out:
                    stats.batches_emitted += 1
                    yield Batch(out)
                continue
            out: List[Value] = []
            append = out.append
            for x, key in zip(rows, keys):
                bucket = table.get(key, empty)
                if kind == "nestjoin":
                    group = set()
                    if bucket:
                        env[lvar] = x
                        for y in bucket:
                            env[rvar] = y
                            if residual is None or residual(env):
                                group.add(result(env))
                    stats.output_tuples += 1
                    append(x.update_except({as_attr: frozenset(group)}))
                    continue
                matched = False
                if bucket:
                    env[lvar] = x
                    for y in bucket:
                        env[rvar] = y
                        if residual is None or residual(env):
                            matched = True
                            if kind == "join" or kind == "outerjoin":
                                stats.output_tuples += 1
                                append(concat(x, y))
                            elif kind == "semijoin":
                                break
                tail = _join_tail(kind, x, matched, (), null_pad, as_attr)
                if tail is not None:
                    stats.output_tuples += 1
                    append(tail)
            if out:
                stats.batches_emitted += 1
                yield Batch(out)

    def _build_batched(self, rt: ExecRuntime) -> Dict[Value, List[VTuple]]:
        """Batched build: one bulk key-kernel pass per key expression over
        the materialized build input, instead of |R| closure calls per
        key."""
        table: Dict[Value, List[VTuple]] = {}
        rows = list(self._consume(self.right, rt))
        if not rows:
            return table
        kernels = [rt.batch_fn(k, self.rvar) for k in self.right_keys]
        cols = [kern(rows) for kern in kernels]
        rt.stats.hash_inserts += len(rows)
        if len(cols) == 1:
            # bare keys, matching the probe side's single-key convention
            for y, k in zip(rows, cols[0]):
                table.setdefault(k, []).append(y)
        else:
            for y, key in zip(rows, zip(*cols)):
                table.setdefault(key, []).append(y)
        return table

    def vector_note(self) -> str:
        if self.build_side == "left":
            return ""
        covered = all(
            vector_covered(k, self.lvar) for k in self.left_keys
        ) and all(vector_covered(k, self.rvar) for k in self.right_keys)
        return "vec" if covered else "vec:fallback"

    def _iterate_build_left(self, rt: ExecRuntime) -> Iterator[Value]:
        """Mirror orientation: hash the left operand, stream the right.

        Only reached for the plain ``join`` kind, whose output
        ``{x ∘ y | p(x, y)}`` is orientation-independent.
        """
        table: Dict[Value, List[VTuple]] = {}
        key_fns = [rt.compiled(k) for k in self.left_keys]
        env: Dict[str, Value] = {}
        for x in self._consume(self.left, rt):
            env[self.lvar] = x
            key = tuple(fn(env) for fn in key_fns)
            table.setdefault(key, []).append(x)
            rt.stats.hash_inserts += 1
        probe_fns = [rt.compiled(k) for k in self.right_keys]
        trivial_residual = self.residual == A.Literal(True)
        residual = None if trivial_residual else rt.compiled_pred(self.residual)
        for y in self._input(self.right, rt):
            rt.stats.tuples_visited += 1
            env[self.rvar] = y
            key = tuple(fn(env) for fn in probe_fns)
            rt.stats.hash_probes += 1
            for x in table.get(key, ()):
                env[self.lvar] = x
                if residual is None or residual(env):
                    rt.stats.output_tuples += 1
                    yield concat(x, y)


class MembershipHashJoin(PlanNode):
    """Hash join for set-membership predicates like ``p[pid] ∈ s.parts``.

    Two orientations:

    * ``probe_side="left-set"`` — the left tuple carries the set; the hash
      table maps the right element expression to right tuples; every member
      of the left set probes the table (Example Queries 5 and 6);
    * ``probe_side="right-set"`` — the right tuple carries the set; the
      table is *multi-keyed* on the set members and the left element
      expression probes it.

    Either way the right operand is the build side (pipeline break) and the
    left streams.
    """

    break_note = "builds right"

    def __init__(
        self,
        kind: str,
        lvar: str,
        rvar: str,
        element: A.Expr,
        container: A.Expr,
        probe_side: str,
        residual: A.Expr,
        left: PlanNode,
        right: PlanNode,
        as_attr: Optional[str] = None,
        result: Optional[A.Expr] = None,
        right_attrs: Tuple[str, ...] = (),
    ) -> None:
        if kind not in JOIN_KINDS:
            raise PlanError(f"unknown join kind {kind!r}")
        if probe_side not in ("left-set", "right-set"):
            raise PlanError(f"unknown probe side {probe_side!r}")
        self.kind = kind
        self.lvar = lvar
        self.rvar = rvar
        self.element = element
        self.container = container
        self.probe_side = probe_side
        self.residual = residual
        self.left = left
        self.right = right
        self.as_attr = as_attr
        self.result = result
        self.right_attrs = right_attrs
        self.label = f"MembershipHashJoin({kind})"

    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        from repro.adl.pretty import pretty

        return f"{pretty(self.element)} ∈ {pretty(self.container)} [{self.probe_side}]"

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        element = rt.compiled(self.element)
        container = rt.compiled(self.container)
        table: Dict[Value, List[VTuple]] = {}
        env: Dict[str, Value] = {}
        for y in self._consume(self.right, rt):
            env[self.rvar] = y
            if self.probe_side == "left-set":
                key = element(env)
                table.setdefault(key, []).append(y)
                rt.stats.hash_inserts += 1
            else:
                members = container(env)
                if not isinstance(members, frozenset):
                    raise EvaluationError("membership join container is not a set")
                for member in members:
                    table.setdefault(member, []).append(y)
                    rt.stats.hash_inserts += 1

        trivial_residual = self.residual == A.Literal(True)
        residual = None if trivial_residual else rt.compiled_pred(self.residual)
        result = rt.compiled(self.result) if self.result is not None else None
        null_pad = VTuple({a: None for a in self.right_attrs})
        kind = self.kind
        for x in self._input(self.left, rt):
            rt.stats.tuples_visited += 1
            matched = False
            group = set()
            for y in self._candidates(rt, table, x, env, element, container):
                env[self.rvar] = y
                if residual is not None and not residual(env):
                    continue
                matched = True
                if kind in ("join", "outerjoin"):
                    rt.stats.output_tuples += 1
                    yield concat(x, y)
                elif kind == "semijoin":
                    break
                elif kind == "nestjoin":
                    group.add(result(env))
            tail = _join_tail(kind, x, matched, group, null_pad, self.as_attr)
            if tail is not None:
                rt.stats.output_tuples += 1
                yield tail

    def _candidates(self, rt, table, x, env, element, container) -> List[VTuple]:
        env[self.lvar] = x
        seen: List[VTuple] = []
        marked = set()
        if self.probe_side == "left-set":
            members = container(env)
            if not isinstance(members, frozenset):
                raise EvaluationError("membership join container is not a set")
            for member in members:
                rt.stats.hash_probes += 1
                for y in table.get(member, ()):
                    if id(y) not in marked:
                        marked.add(id(y))
                        seen.append(y)
        else:
            key = element(env)
            rt.stats.hash_probes += 1
            seen = list(table.get(key, ()))
        return seen


class IndexNestedLoopJoin(PlanNode):
    """Index nested-loop join: probe a registered persistent index on the
    right extent's join attribute instead of building a transient hash
    table — one of the paper's Section 6 join strategies the rewrite to
    joins makes available.

    The left operand streams; each tuple evaluates ``left_key`` and looks
    the value up in the catalog index on ``extent.attr``.  There is **no
    pipeline break and no build phase**: the right extent is never scanned,
    which is exactly the win over a hash join when the probe side is small
    and the indexed side is large.  ``residual`` filters candidate pairs
    (extra equi conjuncts, membership conjuncts, pushed-down right-side
    filters).  Supports the whole join family with the same emission
    semantics as :class:`HashJoinBase`.
    """

    def __init__(
        self,
        kind: str,
        lvar: str,
        rvar: str,
        left_key: A.Expr,
        extent: str,
        attr: str,
        index_name: str,
        residual: A.Expr,
        left: PlanNode,
        as_attr: Optional[str] = None,
        result: Optional[A.Expr] = None,
        right_attrs: Tuple[str, ...] = (),
    ) -> None:
        if kind not in JOIN_KINDS:
            raise PlanError(f"unknown join kind {kind!r}")
        self.kind = kind
        self.lvar = lvar
        self.rvar = rvar
        self.left_key = left_key
        self.extent = extent
        self.attr = attr
        self.index_name = index_name
        self.residual = residual
        self.left = left
        self.as_attr = as_attr
        self.result = result
        self.right_attrs = right_attrs
        self.label = f"IndexNLJoin({kind})"

    def children(self):
        return (self.left,)

    def describe(self) -> str:
        from repro.adl.pretty import pretty

        text = (
            f"{pretty(self.left_key)} -> {self.extent}.{self.attr} "
            f"via {self.index_name}"
        )
        if self.residual != A.Literal(True):
            text += f" ; residual {pretty(self.residual)}"
        return text

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        index = _catalog_index(rt, self.extent, self.attr, self.index_name)
        key_fn = rt.compiled(self.left_key)
        trivial_residual = self.residual == A.Literal(True)
        residual = None if trivial_residual else rt.compiled_pred(self.residual)
        result = rt.compiled(self.result) if self.result is not None else None
        null_pad = VTuple({a: None for a in self.right_attrs})
        env: Dict[str, Value] = {}
        kind = self.kind
        for x in self._input(self.left, rt):
            rt.stats.tuples_visited += 1
            env[self.lvar] = x
            rt.stats.index_probes += 1
            matched = False
            group = set()
            for y in index.lookup(key_fn(env)):
                env[self.rvar] = y
                if residual is not None and not residual(env):
                    continue
                matched = True
                if kind in ("join", "outerjoin"):
                    rt.stats.output_tuples += 1
                    yield concat(x, y)
                elif kind == "semijoin":
                    break
                elif kind == "nestjoin":
                    group.add(result(env))
            tail = _join_tail(kind, x, matched, group, null_pad, self.as_attr)
            if tail is not None:
                rt.stats.output_tuples += 1
                yield tail


class SortMergeJoin(PlanNode):
    """Single-key sort-merge join (plain join kind only) — one of the
    paper's 'various efficient join implementations', used by the ablation
    benchmark.  Sorting makes both operands pipeline breaks; the merge
    output streams."""

    label = "SortMergeJoin"
    break_note = "sorts both inputs"

    def __init__(
        self,
        lvar: str,
        rvar: str,
        left_key: A.Expr,
        right_key: A.Expr,
        residual: A.Expr,
        left: PlanNode,
        right: PlanNode,
    ) -> None:
        self.lvar = lvar
        self.rvar = rvar
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        from repro.datamodel.values import sort_key

        env: Dict[str, Value] = {}

        def keyed(node, var, key_expr):
            key_fn = rt.compiled(key_expr)
            pairs = []
            for row in self._consume(node, rt):
                env[var] = row
                key = key_fn(env)
                rt.stats.comparisons += 1
                pairs.append((key, row))
            pairs.sort(key=lambda kv: sort_key(kv[0]))
            return pairs

        left = keyed(self.left, self.lvar, self.left_key)
        right = keyed(self.right, self.rvar, self.right_key)
        trivial_residual = self.residual == A.Literal(True)
        residual = None if trivial_residual else rt.compiled_pred(self.residual)
        i = j = 0
        while i < len(left) and j < len(right):
            rt.stats.comparisons += 1
            lk, rk = sort_key(left[i][0]), sort_key(right[j][0])
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                j_end = j
                while j_end < len(right) and sort_key(right[j_end][0]) == lk:
                    j_end += 1
                i_end = i
                while i_end < len(left) and sort_key(left[i_end][0]) == lk:
                    i_end += 1
                for ii in range(i, i_end):
                    for jj in range(j, j_end):
                        rt.stats.tuples_visited += 1
                        env[self.lvar] = left[ii][1]
                        env[self.rvar] = right[jj][1]
                        if residual is None or residual(env):
                            rt.stats.output_tuples += 1
                            yield concat(left[ii][1], right[jj][1])
                i, j = i_end, j_end


class CartesianProduct(PlanNode):
    label = "CartesianProduct"
    break_note = "materializes right"

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        right = self._consume(self.right, rt)
        for x in self._input(self.left, rt):
            for y in right:
                rt.stats.tuples_visited += 1
                yield concat(x, y)


class DivisionOp(PlanNode):
    """Hash-grouped relational division."""

    label = "Division"
    break_note = "groups both inputs"

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        left = self._consume(self.left, rt)
        right = self._consume(self.right, rt)
        if not left:
            return
        divisor_attrs: Optional[frozenset] = None
        for y in right:
            divisor_attrs = y.attributes
            break
        if divisor_attrs is None:
            yield from left
            return
        groups: Dict[VTuple, set] = {}
        for item in left:
            rt.stats.tuples_visited += 1
            key = item.drop(divisor_attrs)
            groups.setdefault(key, set()).add(item.subscript(divisor_attrs))
        for key, seen in groups.items():
            if seen >= right:
                yield key


class MaterializeOp(PlanNode):
    """The assembly implementation of the materialize operator ([BlMG93]).

    Collects the oids referenced by a whole batch of tuples, fetches them
    page-clustered (:meth:`Database.fetch_many` charges each page once),
    then attaches the objects.  Falls back to uncounted logical deref on
    stores without paging.  Inherently a pipeline break: the batch *is*
    the optimization.
    """

    label = "Materialize(assembly)"
    break_note = "batches oid fetches"

    def __init__(self, attr: str, as_attr: str, class_name: str, child: PlanNode) -> None:
        self.attr = attr
        self.as_attr = as_attr
        self.class_name = class_name
        self.child = child

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"{self.attr} -> {self.as_attr} : {self.class_name}"

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        rows = list(self._consume(self.child, rt))
        all_oids: List = []
        shapes: List[Tuple[VTuple, object]] = []
        for row in rows:
            ref = row[self.attr]
            if isinstance(ref, frozenset):
                members = sorted(ref, key=lambda o: (o.class_name, o.number))
                shapes.append((row, members))
                all_oids.extend(members)
            else:
                shapes.append((row, ref))
                all_oids.append(ref)
        rt.stats.oid_derefs += len(all_oids)
        if hasattr(rt.db, "fetch_many"):
            fetched = rt.db.fetch_many(all_oids)
        else:
            fetched = [rt.db.deref(oid) for oid in all_oids]
        objects = dict(zip(all_oids, fetched))
        for row, ref in shapes:
            if isinstance(ref, list):
                attached: Value = frozenset(objects[oid] for oid in ref)
            else:
                attached = objects[ref]
            yield row.update_except({self.as_attr: attached})
