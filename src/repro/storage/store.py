"""The object store: class extents on paged heap files plus an oid index.

Implements the paper's logical-design mapping at the physical level:

* every class extension is a :class:`~repro.storage.pages.HeapFile` of
  (possibly complex) tuples — set-valued attributes are stored *clustered*
  with their parent tuple (the Section 3 assumption that makes unnesting
  them undesirable);
* every object carries an ``oid`` field; the store keeps an oid →
  ``(extent, page, slot)`` map, so oids behave like physical pointers —
  the property that makes the materialize/assembly operator of Section 6.2
  interesting;
* reference attributes hold :class:`~repro.datamodel.values.Oid` values.

The store satisfies the small protocol the ADL interpreter needs
(:meth:`extent`, :meth:`deref`) and adds the paged accessors
(:meth:`scan`, :meth:`fetch_many`) the physical operators use.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.datamodel.errors import SchemaError, StorageError, UnknownExtentError
from repro.datamodel.schema import OID_ATTR, Schema
from repro.datamodel.values import Oid, Value, VTuple
from repro.storage.pages import HeapFile, IOCounter

DEFAULT_PAGE_SIZE = 4096


class Database:
    """Schema + extents + oid index.

    ``page_size`` controls the simulated page capacity; benchmarks vary it
    to expose I/O behaviour, unit tests leave the default.
    """

    def __init__(self, schema: Schema, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        self.schema = schema
        self.io = IOCounter()
        self._page_size = page_size
        self._files: Dict[str, HeapFile] = {}
        self._oid_index: Dict[Oid, Tuple[str, int, int]] = {}
        self._next_oid: Dict[str, int] = {}
        self._extent_cache: Dict[str, frozenset] = {}
        for name in schema.extent_names:
            self._files[name] = HeapFile(name, page_size, self.io)

    # -- population ---------------------------------------------------------
    def new_oid(self, class_name: str) -> Oid:
        number = self._next_oid.get(class_name, 0)
        self._next_oid[class_name] = number + 1
        return Oid(class_name, number)

    def insert(self, class_name: str, attributes: Mapping[str, Value]) -> Oid:
        """Create one object; returns its fresh oid.

        The attribute set must exactly match the class definition — objects
        with missing or extra fields would break the typed algebra.
        """
        cdef = self.schema.class_def(class_name)
        declared = set(cdef.attributes)
        given = set(attributes)
        if declared != given:
            missing = declared - given
            extra = given - declared
            parts = []
            if missing:
                parts.append(f"missing {sorted(missing)}")
            if extra:
                parts.append(f"unexpected {sorted(extra)}")
            raise SchemaError(f"insert into {class_name}: {', '.join(parts)}")
        oid = self.new_oid(class_name)
        fields = {OID_ATTR: oid}
        fields.update(attributes)
        record = VTuple(fields)
        page_id, slot = self._files[cdef.extent].append(record)
        self._oid_index[oid] = (cdef.extent, page_id, slot)
        self._extent_cache.pop(cdef.extent, None)
        # notified insert: the catalog (if one registered itself on this
        # store) may adjust the extent's cardinality incrementally on the
        # next stale-statistics lookup instead of re-analyzing
        catalog = getattr(self, "catalog", None)
        if catalog is not None:
            catalog.note_insert(cdef.extent)
        return oid

    def insert_many(self, class_name: str, rows: Iterable[Mapping[str, Value]]) -> List[Oid]:
        return [self.insert(class_name, row) for row in rows]

    # -- interpreter protocol --------------------------------------------------
    def extent(self, name: str) -> frozenset:
        """The extent as a set value (no I/O charge — logical access).

        The naive interpreter and the rewrite tests use this; physical
        operators use :meth:`scan`, which charges page reads.
        """
        if name not in self._files:
            raise UnknownExtentError(name)
        if name not in self._extent_cache:
            rows = []
            for page in self._files[name].pages:
                rows.extend(page.records)
            self._extent_cache[name] = frozenset(rows)
        return self._extent_cache[name]

    def deref(self, oid: Oid) -> VTuple:
        """Follow a pointer (logical access, no I/O charge)."""
        try:
            extent_name, page_id, slot = self._oid_index[oid]
        except KeyError:
            raise StorageError(f"dangling oid {oid!r}") from None
        return self._files[extent_name].pages[page_id].records[slot]

    # -- physical access (counted) ------------------------------------------------
    def scan(self, name: str) -> Iterator[VTuple]:
        if name not in self._files:
            raise UnknownExtentError(name)
        return self._files[name].scan()

    def fetch(self, oid: Oid) -> VTuple:
        """Pointer dereference charged as a random page read."""
        try:
            extent_name, page_id, slot = self._oid_index[oid]
        except KeyError:
            raise StorageError(f"dangling oid {oid!r}") from None
        return self._files[extent_name].fetch(page_id, slot)

    def fetch_many(self, oids: Iterable[Oid]) -> List[VTuple]:
        """Assembly-style batched dereference: distinct pages charged once.

        Oids must all reference the same class; mixing classes would hide
        per-file locality, which is the thing being measured.
        """
        oid_list = list(oids)
        if not oid_list:
            return []
        by_extent: Dict[str, List[Tuple[int, int]]] = {}
        order: List[Tuple[str, int, int]] = []
        for oid in oid_list:
            try:
                extent_name, page_id, slot = self._oid_index[oid]
            except KeyError:
                raise StorageError(f"dangling oid {oid!r}") from None
            by_extent.setdefault(extent_name, []).append((page_id, slot))
            order.append((extent_name, page_id, slot))
        fetched: Dict[Tuple[str, int, int], VTuple] = {}
        for extent_name, addresses in by_extent.items():
            records = self._files[extent_name].fetch_clustered(addresses)
            for address, record in zip(sorted(addresses), records):
                fetched[(extent_name,) + address] = record
        return [fetched[key] for key in order]

    # -- introspection ---------------------------------------------------------------
    def extent_size(self, name: str) -> int:
        if name not in self._files:
            raise UnknownExtentError(name)
        return self._files[name].record_count

    def page_count(self, name: str) -> int:
        if name not in self._files:
            raise UnknownExtentError(name)
        return self._files[name].page_count

    def reset_io(self) -> None:
        self.io.reset()


class MemoryDatabase:
    """A schema-less dict-backed database for algebra-level tests.

    Satisfies the interpreter protocol (:meth:`extent` / :meth:`deref`)
    without any schema or paging.  Handy for property tests that generate
    arbitrary relations, like the Figure 2 tables.
    """

    def __init__(self, extents: Optional[Mapping[str, Iterable[VTuple]]] = None) -> None:
        self.schema: Optional[Schema] = None
        self._extents: Dict[str, frozenset] = {}
        self._objects: Dict[Oid, VTuple] = {}
        if extents:
            for name, rows in extents.items():
                self.set_extent(name, rows)

    def _store_rows(self, name: str, rows: frozenset) -> None:
        self._extents[name] = rows
        for row in rows:
            if isinstance(row, VTuple) and OID_ATTR in row and isinstance(row[OID_ATTR], Oid):
                self._objects[row[OID_ATTR]] = row

    def set_extent(self, name: str, rows: Iterable[VTuple]) -> None:
        self._store_rows(name, frozenset(rows))
        # a wholesale replacement is an *unaccounted* change: the catalog
        # must fall back to a full re-analyze on the next staleness hit
        catalog = getattr(self, "catalog", None)
        if catalog is not None:
            catalog.note_replaced(name)

    def insert_rows(self, name: str, rows: Iterable[VTuple]) -> None:
        """Add rows to an extent as a *notified* insert: the catalog may
        adjust cardinality incrementally instead of re-analyzing."""
        added = frozenset(rows)
        self._store_rows(name, self._extents.get(name, frozenset()) | added)
        catalog = getattr(self, "catalog", None)
        if catalog is not None:
            catalog.note_insert(name, len(added))

    def delete_rows(self, name: str, rows: Iterable[VTuple]) -> None:
        """Remove rows from an extent as a *notified* delete."""
        removed = frozenset(rows)
        self._store_rows(name, self.extent(name) - removed)
        catalog = getattr(self, "catalog", None)
        if catalog is not None:
            catalog.note_delete(name, len(removed))

    def extent(self, name: str) -> frozenset:
        try:
            return self._extents[name]
        except KeyError:
            raise UnknownExtentError(name) from None

    def deref(self, oid: Oid) -> VTuple:
        try:
            return self._objects[oid]
        except KeyError:
            raise StorageError(f"dangling oid {oid!r}") from None

    @property
    def extent_names(self) -> List[str]:
        return list(self._extents)
