"""The object store: class extents on paged heap files plus an oid index.

Implements the paper's logical-design mapping at the physical level:

* every class extension is a :class:`~repro.storage.pages.HeapFile` of
  (possibly complex) tuples — set-valued attributes are stored *clustered*
  with their parent tuple (the Section 3 assumption that makes unnesting
  them undesirable);
* every object carries an ``oid`` field; the store keeps an oid →
  ``(extent, page, slot)`` map, so oids behave like physical pointers —
  the property that makes the materialize/assembly operator of Section 6.2
  interesting;
* reference attributes hold :class:`~repro.datamodel.values.Oid` values.

The store satisfies the small protocol the ADL interpreter needs
(:meth:`extent`, :meth:`deref`) and adds the paged accessors
(:meth:`scan`, :meth:`fetch_many`) the physical operators use.

Visibility epochs (PR 7)
========================

Both stores are **multi-versioned at batch granularity**: every mutation
batch (a single ``insert``/``insert_rows``/``delete_rows``/``set_extent``
call, or everything inside one ``with db.batch():`` block) publishes a
new monotonic *epoch*.  A reader that pins an epoch
(:meth:`EpochStoreMixin.pin_epoch`) gets a **consistent multi-extent
view** of the database as of that epoch through :meth:`extent_at` /
:class:`EpochView`, no matter how many writer batches land while it
runs.  The machinery:

* mutations are serialized by a per-store re-entrant lock, held across
  *preserve → mutate → bump*;
* the pre-mutation value of an extent is preserved **only when some pin
  can still see it** (a pinned epoch at or after the value became
  current) — with no pins active, the write path is a lock acquisition
  and two dict updates, nothing is copied;
* preserved snapshots are reclaimed as soon as the last pin that could
  see them is released (counted in :attr:`reclaimed_snapshots` —
  "every event is counted, never silent"); ``keep_history=True`` turns
  reclamation off, which is what lets the stress tests compare every
  result against the exact per-epoch oracle after the fact.

Unpinned reads keep their pre-PR-7 semantics (the current extent value,
no isolation guarantee across extents); the epoch layer is strictly
additive.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, insort
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.datamodel.errors import SchemaError, StorageError, UnknownExtentError
from repro.datamodel.schema import OID_ATTR, Schema
from repro.datamodel.values import Oid, Value, VTuple
from repro.storage.pages import HeapFile, IOCounter

DEFAULT_PAGE_SIZE = 4096


class EpochStoreMixin:
    """Visibility epochs + snapshot pinning, shared by both stores.

    The concrete store must call :meth:`_init_epochs` in ``__init__``,
    wrap every mutation in ``with self._mutating(extent_name):``, and
    implement ``_current_rows(name) -> frozenset`` (the extent's current
    value — identity-stable, exactly what ``extent()`` returns).
    """

    def _init_epochs(self) -> None:
        #: monotonic store epoch; bumped once per published mutation batch
        self._epoch: int = 0
        #: epoch → pin refcount (sessions / in-flight queries)
        self._pins: Dict[int, int] = {}
        #: the distinct pinned epochs, ascending — maintained alongside
        #: ``_pins`` so preservation gates are O(1) (max-pin check) and
        #: reclamation visibility tests are O(log pins) per preserved
        #: entry instead of a scan of the whole pin set (PR 8 fix of the
        #: PR 7 simplification; stress-tested at thousands of pins)
        self._pins_sorted: List[int] = []
        #: extent → epoch at which its current value became current
        self._changed_at: Dict[str, int] = {}
        #: extent → ascending ``[(became_current_epoch, rows), ...]`` of
        #: *superseded* values still visible to some pinned epoch
        self._preserved: Dict[str, List[Tuple[int, frozenset]]] = {}
        #: keep every superseded snapshot regardless of pins (time-travel
        #: mode for tests/debugging; reclamation is disabled)
        self.keep_history: bool = False
        # -- epoch accounting: every pin/preserve/reclaim event is counted
        self.pin_events: int = 0
        self.preserved_snapshots: int = 0
        self.reclaimed_snapshots: int = 0
        self._batch_depth: int = 0
        self._batch_touched: set = set()
        # re-entrant: extent materialization and preservation may nest
        # inside a batch held by the same writer thread
        self._epoch_lock = threading.RLock()

    # -- epoch introspection -------------------------------------------------
    @property
    def epoch(self) -> int:
        """The current visibility epoch (the newest published batch)."""
        return self._epoch

    @property
    def pinned_epochs(self) -> Dict[int, int]:
        """Live ``{epoch: refcount}`` snapshot (for stats/debugging)."""
        with self._epoch_lock:
            return dict(self._pins)

    # -- pinning ------------------------------------------------------------
    def pin_epoch(self, epoch: Optional[int] = None) -> int:
        """Pin ``epoch`` (default: the current one) and return it.

        While an epoch is pinned, :meth:`extent_at` for it stays
        answerable: mutation batches preserve the values it can see.
        Pinning an *older* epoch is only allowed while it is still
        pinned by someone else (or under ``keep_history``) — otherwise
        its snapshots may already be reclaimed and reads would be
        undefined.
        """
        with self._epoch_lock:
            if epoch is None:
                epoch = self._epoch
            elif epoch > self._epoch:
                raise StorageError(
                    f"cannot pin future epoch {epoch} (current is {self._epoch})"
                )
            elif (
                epoch < self._epoch
                and epoch not in self._pins
                and not self.keep_history
            ):
                raise StorageError(
                    f"epoch {epoch} is not pinned; its snapshots may already "
                    f"be reclaimed (current epoch is {self._epoch})"
                )
            count = self._pins.get(epoch, 0)
            if count == 0:
                insort(self._pins_sorted, epoch)
            self._pins[epoch] = count + 1
            self.pin_events += 1
            return epoch

    def unpin_epoch(self, epoch: int) -> None:
        """Release one pin on ``epoch``; the last release reclaims every
        preserved snapshot no remaining pin can see."""
        with self._epoch_lock:
            count = self._pins.get(epoch, 0)
            if count < 1:
                raise StorageError(f"epoch {epoch} is not pinned")
            if count == 1:
                del self._pins[epoch]
                self._pins_sorted.pop(bisect_left(self._pins_sorted, epoch))
                self._reclaim_locked()
            else:
                self._pins[epoch] = count - 1

    @contextmanager
    def pinned(self, epoch: Optional[int] = None):
        """``with db.pinned() as e:`` — pin for the block's duration."""
        pinned = self.pin_epoch(epoch)
        try:
            yield pinned
        finally:
            self.unpin_epoch(pinned)

    def _reclaim_locked(self) -> None:
        """Drop preserved snapshots no pin can see (caller holds the lock).

        A preserved entry ``(stamp, rows)`` is visible to pinned epoch
        ``P`` iff ``stamp <= P < next_stamp`` where ``next_stamp`` is the
        epoch its successor value became current at.  The test is a
        ``bisect`` into the sorted distinct-pin list — the smallest pin
        ``>= stamp`` either falls below ``next_stamp`` (visible) or no
        pin does — so a full reclaim costs O(entries x log pins), not a
        rescan of the pin set per entry.
        """
        if self.keep_history:
            return
        pins = self._pins_sorted
        for name in list(self._preserved):
            chain = self._preserved[name]
            kept: List[Tuple[int, frozenset]] = []
            for i, (stamp, rows) in enumerate(chain):
                next_stamp = (
                    chain[i + 1][0] if i + 1 < len(chain) else self._changed_at.get(name, 0)
                )
                idx = bisect_left(pins, stamp)
                if idx < len(pins) and pins[idx] < next_stamp:
                    kept.append((stamp, rows))
                else:
                    self.reclaimed_snapshots += 1
            if kept:
                self._preserved[name] = kept
            else:
                del self._preserved[name]

    # -- the atomic write path ----------------------------------------------
    @contextmanager
    def batch(self):
        """Group several mutations into **one** published epoch.

        The store lock is held for the whole block: concurrent pinners
        and epoch readers wait, so no pin can land between the batch's
        member mutations and observe a torn multi-extent state.  The new
        epoch becomes visible atomically when the block exits.
        """
        with self._epoch_lock:
            self._batch_depth += 1
            try:
                yield self
            finally:
                self._batch_depth -= 1
                if self._batch_depth == 0 and self._batch_touched:
                    self._epoch += 1
                    for name in self._batch_touched:
                        self._changed_at[name] = self._epoch
                    self._batch_touched.clear()

    @contextmanager
    def _mutating(self, *names: str):
        """Wrap one mutation of ``names``: preserve the pre-state any pin
        still needs, apply the mutation, publish the new epoch (deferred
        to the enclosing :meth:`batch`, if any)."""
        with self._epoch_lock:
            for name in names:
                self._preserve_if_needed(name)
            yield
            if self._batch_depth:
                self._batch_touched.update(names)
            else:
                self._epoch += 1
                for name in names:
                    self._changed_at[name] = self._epoch

    def _preserve_if_needed(self, name: str) -> None:
        """Keep the current value of ``name`` iff a pinned epoch (or
        ``keep_history``) can still see it.  Caller holds the lock."""
        changed = self._changed_at.get(name, 0)
        if not (
            self.keep_history
            or (self._pins_sorted and self._pins_sorted[-1] >= changed)
        ):
            return
        rows = self._current_rows(name)
        if rows is None:
            return  # the extent does not exist yet; nothing to preserve
        chain = self._preserved.setdefault(name, [])
        if chain and chain[-1][0] == changed:
            return  # this value is already preserved (second hit in a batch)
        chain.append((changed, rows))
        self.preserved_snapshots += 1

    def _current_rows(self, name: str) -> Optional[frozenset]:  # pragma: no cover
        raise NotImplementedError

    # -- epoch reads ---------------------------------------------------------
    def extent_at(self, name: str, epoch: Optional[int]) -> frozenset:
        """The value of ``name`` as of visibility ``epoch``.

        For the current epoch this returns the *identical* ``frozenset``
        object ``extent()`` returns, so every identity-based staleness
        handshake (statistics, indexes, partitionings, pool snapshots)
        keeps working unchanged on pinned-but-fresh reads.
        """
        if epoch is None:
            return self.extent(name)
        while True:
            with self._epoch_lock:
                if epoch < self._changed_at.get(name, 0):
                    best: Optional[frozenset] = None
                    for stamp, rows in self._preserved.get(name, ()):
                        if stamp <= epoch:
                            best = rows
                        else:
                            break
                    if best is None:
                        raise StorageError(
                            f"extent {name!r} has no snapshot at epoch {epoch}: "
                            f"it was reclaimed (epoch not pinned) or the extent "
                            f"did not exist yet"
                        )
                    return best
            # the epoch sees the extent's *current* value.  Materialize it
            # with the lock released — ``extent()`` may be slow (paged
            # cache rebuild, subclass hooks), and holding the store lock
            # across it would stall every pinner and writer behind one
            # reader.  Revalidate after: a writer that raced the read
            # moved ``changed_at`` and preserved the value this epoch
            # needs, so the loop picks it up from the chain.
            current = self.extent(name)
            with self._epoch_lock:
                if epoch >= self._changed_at.get(name, 0):
                    return current

    def extent_current_at(self, name: str, epoch: int) -> bool:
        """Is the extent's *current* value the one ``epoch`` sees?"""
        with self._epoch_lock:
            return epoch >= self._changed_at.get(name, 0)

    def epoch_stats(self) -> dict:
        """Counters for service-level observability."""
        with self._epoch_lock:
            return {
                "epoch": self._epoch,
                "pinned": sum(self._pins.values()),
                "pinned_epochs": len(self._pins),
                "pin_events": self.pin_events,
                "preserved_snapshots": self.preserved_snapshots,
                "reclaimed_snapshots": self.reclaimed_snapshots,
                "live_snapshots": sum(len(c) for c in self._preserved.values()),
            }


class EpochView:
    """A read-only view of a store at one pinned visibility epoch.

    Satisfies the interpreter protocol (``extent`` / ``deref``) plus the
    paged accessors; everything not overridden passes through to the
    base store (``catalog``, ``schema``, ``fetch_many``...).  The view
    itself takes no pin — the caller owns the pin's lifetime (the
    service pins at submission and unpins when the query finishes).
    """

    def __init__(self, base, epoch: int) -> None:
        # object.__setattr__-free plain attributes; __getattr__ below only
        # fires for names *not* found on the instance
        self._base = base
        self.pinned_epoch = epoch

    def extent(self, name: str) -> frozenset:
        return self._base.extent_at(name, self.pinned_epoch)

    def scan(self, name: str) -> Iterator[VTuple]:
        """Stream the epoch's rows.

        Always iterates the materialized epoch snapshot — delegating to
        the paged scan would race a concurrent writer appending pages and
        could leak post-epoch rows into a pinned read.  Consequence
        (documented): epoch-pinned reads charge no per-page I/O; the
        ``Stats`` counters (tuples, probes, breaks) are unaffected.
        """
        return iter(self.extent(name))

    def deref(self, oid: Oid) -> VTuple:
        return self._base.deref(oid)

    @property
    def scan_pages(self):
        # the passthrough below must NOT leak the base store's live page
        # scan into a pinned read (PR 8 batch consumers probe for this)
        raise AttributeError(
            "scan_pages is unavailable on epoch views: pinned reads "
            "iterate the materialized snapshot"
        )

    def __getattr__(self, name: str):
        return getattr(self._base, name)

    def __repr__(self) -> str:
        return f"EpochView({self._base!r} @ epoch {self.pinned_epoch})"


class Database(EpochStoreMixin):
    """Schema + extents + oid index.

    ``page_size`` controls the simulated page capacity; benchmarks vary it
    to expose I/O behaviour, unit tests leave the default.
    """

    def __init__(self, schema: Schema, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        self.schema = schema
        self.io = IOCounter()
        self._page_size = page_size
        self._files: Dict[str, HeapFile] = {}
        self._oid_index: Dict[Oid, Tuple[str, int, int]] = {}
        self._next_oid: Dict[str, int] = {}
        self._extent_cache: Dict[str, frozenset] = {}
        self._init_epochs()
        for name in schema.extent_names:
            self._files[name] = HeapFile(name, page_size, self.io)

    # -- population ---------------------------------------------------------
    def new_oid(self, class_name: str) -> Oid:
        number = self._next_oid.get(class_name, 0)
        self._next_oid[class_name] = number + 1
        return Oid(class_name, number)

    def insert(self, class_name: str, attributes: Mapping[str, Value]) -> Oid:
        """Create one object; returns its fresh oid.

        The attribute set must exactly match the class definition — objects
        with missing or extra fields would break the typed algebra.
        """
        cdef = self.schema.class_def(class_name)
        declared = set(cdef.attributes)
        given = set(attributes)
        if declared != given:
            missing = declared - given
            extra = given - declared
            parts = []
            if missing:
                parts.append(f"missing {sorted(missing)}")
            if extra:
                parts.append(f"unexpected {sorted(extra)}")
            raise SchemaError(f"insert into {class_name}: {', '.join(parts)}")
        oid = self.new_oid(class_name)
        fields = {OID_ATTR: oid}
        fields.update(attributes)
        record = VTuple(fields)
        with self._mutating(cdef.extent):
            page_id, slot = self._files[cdef.extent].append(record)
            self._oid_index[oid] = (cdef.extent, page_id, slot)
            self._extent_cache.pop(cdef.extent, None)
        # notified insert: the catalog (if one registered itself on this
        # store) may adjust the extent's cardinality incrementally on the
        # next stale-statistics lookup instead of re-analyzing.  Called
        # outside the mutation lock: the catalog's own lock nests *around*
        # store reads (analyze → extent), never the other way.
        catalog = getattr(self, "catalog", None)
        if catalog is not None:
            catalog.note_insert(cdef.extent)
        return oid

    def insert_many(self, class_name: str, rows: Iterable[Mapping[str, Value]]) -> List[Oid]:
        # one epoch for the whole load: the batch is the visibility unit
        with self.batch():
            return [self.insert(class_name, row) for row in rows]

    def _current_rows(self, name: str) -> Optional[frozenset]:
        if name not in self._files:
            return None
        return self.extent(name)

    # -- interpreter protocol --------------------------------------------------
    def extent(self, name: str) -> frozenset:
        """The extent as a set value (no I/O charge — logical access).

        The naive interpreter and the rewrite tests use this; physical
        operators use :meth:`scan`, which charges page reads.
        """
        if name not in self._files:
            raise UnknownExtentError(name)
        cached = self._extent_cache.get(name)
        if cached is not None:
            return cached
        # rebuild under the epoch lock: a writer appending pages mid-read
        # would otherwise produce a torn snapshot, and a torn snapshot
        # preserved for a pinned epoch would break snapshot isolation
        with self._epoch_lock:
            cached = self._extent_cache.get(name)
            if cached is None:
                rows = []
                for page in self._files[name].pages:
                    rows.extend(page.records)
                cached = self._extent_cache[name] = frozenset(rows)
            return cached

    def deref(self, oid: Oid) -> VTuple:
        """Follow a pointer (logical access, no I/O charge)."""
        try:
            extent_name, page_id, slot = self._oid_index[oid]
        except KeyError:
            raise StorageError(f"dangling oid {oid!r}") from None
        return self._files[extent_name].pages[page_id].records[slot]

    # -- physical access (counted) ------------------------------------------------
    def scan(self, name: str) -> Iterator[VTuple]:
        if name not in self._files:
            raise UnknownExtentError(name)
        return self._files[name].scan()

    def scan_pages(self, name: str) -> Iterator[List[VTuple]]:
        """Page-at-a-time scan for batch-mode consumers (PR 8): same I/O
        charges as :meth:`scan`, whole page record lists out.  Only the
        store itself offers this — epoch views deliberately do not, so a
        pinned read can never reach live pages through it."""
        if name not in self._files:
            raise UnknownExtentError(name)
        return self._files[name].scan_pages()

    def fetch(self, oid: Oid) -> VTuple:
        """Pointer dereference charged as a random page read."""
        try:
            extent_name, page_id, slot = self._oid_index[oid]
        except KeyError:
            raise StorageError(f"dangling oid {oid!r}") from None
        return self._files[extent_name].fetch(page_id, slot)

    def fetch_many(self, oids: Iterable[Oid]) -> List[VTuple]:
        """Assembly-style batched dereference: distinct pages charged once.

        Oids must all reference the same class; mixing classes would hide
        per-file locality, which is the thing being measured.
        """
        oid_list = list(oids)
        if not oid_list:
            return []
        by_extent: Dict[str, List[Tuple[int, int]]] = {}
        order: List[Tuple[str, int, int]] = []
        for oid in oid_list:
            try:
                extent_name, page_id, slot = self._oid_index[oid]
            except KeyError:
                raise StorageError(f"dangling oid {oid!r}") from None
            by_extent.setdefault(extent_name, []).append((page_id, slot))
            order.append((extent_name, page_id, slot))
        fetched: Dict[Tuple[str, int, int], VTuple] = {}
        for extent_name, addresses in by_extent.items():
            records = self._files[extent_name].fetch_clustered(addresses)
            for address, record in zip(sorted(addresses), records):
                fetched[(extent_name,) + address] = record
        return [fetched[key] for key in order]

    # -- introspection ---------------------------------------------------------------
    def extent_size(self, name: str) -> int:
        if name not in self._files:
            raise UnknownExtentError(name)
        return self._files[name].record_count

    def page_count(self, name: str) -> int:
        if name not in self._files:
            raise UnknownExtentError(name)
        return self._files[name].page_count

    def reset_io(self) -> None:
        self.io.reset()


class MemoryDatabase(EpochStoreMixin):
    """A schema-less dict-backed database for algebra-level tests.

    Satisfies the interpreter protocol (:meth:`extent` / :meth:`deref`)
    without any schema or paging.  Handy for property tests that generate
    arbitrary relations, like the Figure 2 tables.
    """

    def __init__(self, extents: Optional[Mapping[str, Iterable[VTuple]]] = None) -> None:
        self.schema: Optional[Schema] = None
        self._extents: Dict[str, frozenset] = {}
        self._objects: Dict[Oid, VTuple] = {}
        self._init_epochs()
        if extents:
            with self.batch():  # the initial load is one epoch
                for name, rows in extents.items():
                    self.set_extent(name, rows)

    def _store_rows(self, name: str, rows: frozenset) -> None:
        self._extents[name] = rows
        for row in rows:
            if isinstance(row, VTuple) and OID_ATTR in row and isinstance(row[OID_ATTR], Oid):
                self._objects[row[OID_ATTR]] = row

    def _current_rows(self, name: str) -> Optional[frozenset]:
        return self._extents.get(name)

    def set_extent(self, name: str, rows: Iterable[VTuple]) -> None:
        with self._mutating(name):
            self._store_rows(name, frozenset(rows))
        # a wholesale replacement is an *unaccounted* change: the catalog
        # must fall back to a full re-analyze on the next staleness hit
        catalog = getattr(self, "catalog", None)
        if catalog is not None:
            catalog.note_replaced(name)

    def insert_rows(self, name: str, rows: Iterable[VTuple]) -> None:
        """Add rows to an extent as a *notified* insert: the catalog may
        adjust cardinality incrementally instead of re-analyzing."""
        added = frozenset(rows)
        with self._mutating(name):
            self._store_rows(name, self._extents.get(name, frozenset()) | added)
        catalog = getattr(self, "catalog", None)
        if catalog is not None:
            catalog.note_insert(name, len(added))

    def delete_rows(self, name: str, rows: Iterable[VTuple]) -> None:
        """Remove rows from an extent as a *notified* delete."""
        removed = frozenset(rows)
        with self._mutating(name):
            self._store_rows(name, self.extent(name) - removed)
        catalog = getattr(self, "catalog", None)
        if catalog is not None:
            catalog.note_delete(name, len(removed))

    def extent(self, name: str) -> frozenset:
        try:
            return self._extents[name]
        except KeyError:
            raise UnknownExtentError(name) from None

    def deref(self, oid: Oid) -> VTuple:
        try:
            return self._objects[oid]
        except KeyError:
            raise StorageError(f"dangling oid {oid!r}") from None

    @property
    def extent_names(self) -> List[str]:
        return list(self._extents)
