"""Paged storage simulator: heap files, the object store, indexes, and
the statistics catalog."""

from repro.storage.catalog import Catalog, ExtentStats, NamedIndex
from repro.storage.index import HashIndex, attribute_index, element_index
from repro.storage.pages import HeapFile, IOCounter, Page, estimate_size
from repro.storage.store import (
    DEFAULT_PAGE_SIZE,
    Database,
    EpochStoreMixin,
    EpochView,
    MemoryDatabase,
)

__all__ = [
    "Catalog",
    "DEFAULT_PAGE_SIZE",
    "Database",
    "EpochStoreMixin",
    "EpochView",
    "ExtentStats",
    "HashIndex",
    "NamedIndex",
    "HeapFile",
    "IOCounter",
    "MemoryDatabase",
    "Page",
    "attribute_index",
    "element_index",
    "estimate_size",
]
