"""A simulated paged heap file with I/O accounting.

The paper's performance argument — tuple-oriented nested loops versus
set-oriented joins, PNHL's memory budget, assembly's pointer locality — is
about *access patterns*.  This module provides the minimal substrate that
makes access patterns observable: records live on fixed-capacity pages, and
every page fetch goes through a counter.  There is no real disk; "I/O" is
the unit benchmark harnesses report.

Record sizes are estimated structurally (atoms cost a word, strings their
length, tuples/sets the sum of their parts) so that clustering a set-valued
attribute with its parent tuple — the paper's storage assumption in
Section 3 — visibly fattens pages and raises scan cost, exactly the effect
that makes "unnest then re-nest" expensive.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.datamodel.errors import StorageError
from repro.datamodel.values import Oid, Value, VTuple

#: Simulated bytes per atom slot.
_WORD = 8


def estimate_size(value: Value) -> int:
    """Structural size estimate (simulated bytes) of a stored value."""
    if value is None or isinstance(value, (bool, int, float)):
        return _WORD
    if isinstance(value, str):
        return _WORD + len(value)
    if isinstance(value, Oid):
        return 2 * _WORD
    if isinstance(value, VTuple):
        return _WORD + sum(_WORD + estimate_size(v) for v in value.values())
    if isinstance(value, frozenset):
        return _WORD + sum(estimate_size(v) for v in value)
    raise StorageError(f"cannot size non-value {value!r}")


class IOCounter:
    """Mutable counters shared by every file of one store."""

    __slots__ = ("pages_read", "pages_written", "records_read")

    def __init__(self) -> None:
        self.pages_read = 0
        self.pages_written = 0
        self.records_read = 0

    def reset(self) -> None:
        self.pages_read = 0
        self.pages_written = 0
        self.records_read = 0

    def snapshot(self) -> dict:
        return {
            "pages_read": self.pages_read,
            "pages_written": self.pages_written,
            "records_read": self.records_read,
        }

    def __repr__(self) -> str:
        return (
            f"IOCounter(read={self.pages_read}, written={self.pages_written}, "
            f"records={self.records_read})"
        )


class Page:
    """One fixed-capacity page holding whole records (no spanning)."""

    __slots__ = ("page_id", "capacity", "used", "records")

    def __init__(self, page_id: int, capacity: int) -> None:
        self.page_id = page_id
        self.capacity = capacity
        self.used = 0
        self.records: List[VTuple] = []

    def fits(self, size: int) -> bool:
        return not self.records or self.used + size <= self.capacity

    def append(self, record: VTuple, size: int) -> int:
        """Store a record, returning its slot number."""
        self.records.append(record)
        self.used += size
        return len(self.records) - 1

    def get(self, slot: int) -> VTuple:
        try:
            return self.records[slot]
        except IndexError:
            raise StorageError(f"page {self.page_id} has no slot {slot}") from None


class HeapFile:
    """An append-only sequence of pages holding one extent's records.

    A record larger than the page capacity gets a page of its own (records
    never span pages; a huge clustered set simply makes one oversized page,
    which keeps the cost model simple and monotone).
    """

    def __init__(self, name: str, page_size: int, io: IOCounter) -> None:
        if page_size <= 0:
            raise StorageError("page size must be positive")
        self.name = name
        self.page_size = page_size
        self.io = io
        self.pages: List[Page] = []

    # -- writing -----------------------------------------------------------
    def append(self, record: VTuple) -> Tuple[int, int]:
        """Append a record; returns its ``(page_id, slot)`` address."""
        size = estimate_size(record)
        if not self.pages or not self.pages[-1].fits(size):
            self.pages.append(Page(len(self.pages), self.page_size))
            self.io.pages_written += 1
        page = self.pages[-1]
        slot = page.append(record, size)
        return page.page_id, slot

    # -- reading -----------------------------------------------------------
    def scan(self) -> Iterator[VTuple]:
        """Full scan: one page read per page, one record read per record."""
        for page in self.pages:
            self.io.pages_read += 1
            for record in page.records:
                self.io.records_read += 1
                yield record

    def scan_pages(self) -> Iterator[List[VTuple]]:
        """Page-at-a-time scan (PR 8 columnar scan feed): whole record
        lists out, with *identical* I/O charges to :meth:`scan` — one
        page read per page, one record read per record, just bulk-counted."""
        for page in self.pages:
            self.io.pages_read += 1
            records = page.records
            self.io.records_read += len(records)
            yield records

    def fetch(self, page_id: int, slot: int) -> VTuple:
        """Random access by address — one page read."""
        try:
            page = self.pages[page_id]
        except IndexError:
            raise StorageError(f"file {self.name!r} has no page {page_id}") from None
        self.io.pages_read += 1
        self.io.records_read += 1
        return page.get(slot)

    def fetch_clustered(self, addresses: List[Tuple[int, int]]) -> List[VTuple]:
        """Fetch many records, charging each distinct page once.

        This models the *assembly* access pattern of the materialize
        operator: sort the outstanding references by page, then sweep.
        """
        out: List[VTuple] = []
        last_page: Optional[int] = None
        for page_id, slot in sorted(addresses):
            if page_id != last_page:
                self.io.pages_read += 1
                last_page = page_id
            self.io.records_read += 1
            out.append(self.pages[page_id].get(slot) if page_id < len(self.pages) else self._missing(page_id))
        return out

    def _missing(self, page_id: int) -> VTuple:
        raise StorageError(f"file {self.name!r} has no page {page_id}")

    @property
    def page_count(self) -> int:
        return len(self.pages)

    @property
    def record_count(self) -> int:
        return sum(len(p.records) for p in self.pages)
