"""Catalog: per-extent statistics and named persistent indexes.

The paper's Section 5.1 payoff — "the optimizer may choose from a number
of different join processing strategies" — requires the optimizer to know
something about the data.  This module is that knowledge:

* :class:`ExtentStats` — cardinality, page count, per-attribute distinct
  counts, and average set-valued-attribute size for one extent, computed
  by :meth:`Catalog.analyze` (an ANALYZE-style full pass);
* named persistent :class:`HashIndex` es registered per ``(extent,
  attribute)`` — the access paths behind the planner's index-scan and
  index-nested-loop-join alternatives.  ``multi=True`` registers an
  *element* index over a set-valued attribute (``p.pid ∈ s.parts``-style
  probes).

The catalog works against any store satisfying the interpreter protocol
(:meth:`extent`); paged stores additionally contribute real
``page_count``/``extent_size`` numbers.  The staleness machinery below
additionally requires ``extent()`` to be **identity-stable**: the same
``frozenset`` object must come back until the extent actually changes
(both in-repo stores cache it that way).  A store that rebuilds the set
per call would not break correctness, but would make every lookup appear
stale and re-run ANALYZE each time.  Statistics and indexes are
snapshots, but stale ones are caught automatically: both record the
extent *value* they were computed from, and stores hand out a fresh
``frozenset`` whenever an extent changes, so an identity comparison
detects staleness.  Indexes are rebuilt at execution time; statistics are
re-analyzed lazily on the next :meth:`stats` lookup (counted in
:attr:`Catalog.stat_refreshes`), so the cost model never silently prices
plans with numbers describing old data.  :meth:`refresh` remains for
eager bulk refresh.  The cost model in :mod:`repro.engine.cost` never
*requires* statistics — unknown extents fall back to defaults — so a
catalog can be introduced incrementally.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.datamodel.errors import StorageError
from repro.datamodel.values import Value, VTuple
from repro.storage.index import HashIndex


@dataclass(frozen=True)
class ExtentStats:
    """One extent's ANALYZE output.

    ``source_rows`` keeps the extent value the statistics were computed
    from — the same identity-based staleness handshake named indexes use:
    stores hand out a fresh ``frozenset`` whenever an extent changes, so
    ``db.extent(name) is not stats.source_rows`` detects stale statistics
    (including same-cardinality replacements) without comparing rows.
    """

    extent: str
    cardinality: int
    pages: int
    #: per top-level attribute: number of distinct values
    distinct: Mapping[str, int] = field(default_factory=dict)
    #: per set-valued top-level attribute: mean element count
    avg_set_size: Mapping[str, float] = field(default_factory=dict)
    #: extent value identity at ANALYZE time (not part of equality)
    source_rows: frozenset = field(default_factory=frozenset, compare=False, repr=False)
    #: store visibility epoch at ANALYZE time (0 for epoch-less stores).
    #: Plans priced with these statistics record it; an execution pinned
    #: to a *newer* epoch is flagged by the service's estimate-vs-actual
    #: delta accounting instead of silently trusting old numbers.
    epoch: int = field(default=0, compare=False)

    def distinct_count(self, attr: str) -> Optional[int]:
        return self.distinct.get(attr)

    def set_size(self, attr: str) -> Optional[float]:
        return self.avg_set_size.get(attr)


@dataclass
class NamedIndex:
    """A registered, persistent hash index over one extent attribute.

    ``multi`` indexes a set-valued attribute by its *elements*.  The index
    is an eager snapshot; ``source_rows`` keeps the extent value it was
    built from (stores return a fresh ``frozenset`` whenever the extent
    changes, so an identity comparison detects staleness — including
    same-cardinality replacements) and ``built_cardinality`` records the
    size for the cost model.
    """

    name: str
    extent: str
    attr: str
    multi: bool
    index: HashIndex
    built_cardinality: int
    source_rows: frozenset

    def lookup(self, key: Value) -> List[VTuple]:
        return self.index.lookup(key)


class Catalog:
    """Statistics + index registry over one database."""

    def __init__(self, db) -> None:
        self.db = db
        self._stats: Dict[str, ExtentStats] = {}
        self._indexes: Dict[Tuple[str, str], NamedIndex] = {}
        self._by_name: Dict[str, NamedIndex] = {}
        #: registered hash partitionings, one per extent
        #: (:class:`repro.shard.partition.PartitionedExtent`)
        self._partitions: Dict[str, object] = {}
        #: how many times :meth:`stats` lazily re-analyzed a stale extent
        #: (the statistics analogue of the runtime index-rebuild counter)
        self.stat_refreshes: int = 0
        #: how many times :meth:`stats` absorbed a change *incrementally*
        #: (notified inserts/deletes adjust cardinality without a full
        #: ANALYZE; per-attribute distinct counts stay lazily stale)
        self.stat_increments: int = 0
        #: how many times :meth:`partitioning` lazily re-partitioned a
        #: stale extent
        self.partition_refreshes: int = 0
        #: net notified row delta per extent since its last full ANALYZE.
        #: *Presence* of a key means every change since ANALYZE went
        #: through :meth:`note_insert`/:meth:`note_delete`, so the next
        #: staleness hit may adjust cardinality incrementally instead of
        #: re-analyzing; an unnotified replacement clears the key
        #: (:meth:`note_replaced`) and forces the full re-analyze.
        self._deltas: Dict[str, int] = {}
        #: extents with an *unaccounted* bulk change since their last
        #: ANALYZE — incremental adjustment is off for these until the
        #: next full re-analyze, even if later inserts are notified
        self._tainted: set = set()
        #: monotonic catalog version: bumped whenever the optimizer-visible
        #: state changes — :meth:`analyze` (new statistics),
        #: :meth:`create_index` (new/rebuilt access path), and the lazy
        #: stale-statistics refresh inside :meth:`stats`.  Plan caches key
        #: on it: a cached plan is valid only for the version it was
        #: planned under, so an ANALYZE or index change invalidates every
        #: cached plan at the next lookup.
        self.version: int = 0
        # reentrant: the lazy refresh in stats() holds it across
        # _analyze_one and the version bump
        self._lock = threading.RLock()
        # the delta hooks get their own lock: stores call note_insert /
        # note_delete / note_replaced while holding their epoch/mutation
        # lock, and analyze() holds self._lock while *reading* the store —
        # sharing self._lock here would be a lock-order inversion
        self._delta_lock = threading.Lock()
        # the catalog is *the database's* catalog: registering it on the
        # store lets execution runtimes find the indexes without explicit
        # threading (last constructed catalog wins)
        db.catalog = self

    def _bump_version(self) -> None:
        # += on an int is a read-modify-write; concurrent execution-time
        # index rebuilds would otherwise lose increments
        with self._lock:
            self.version += 1

    # -- statistics ----------------------------------------------------------
    def analyze(self, extents: Optional[Iterable[str]] = None) -> Dict[str, ExtentStats]:
        """Full-pass statistics for ``extents`` (default: every extent).

        Also re-derives the shards and per-partition statistics of any
        registered partitioning of an analyzed extent, so ANALYZE leaves
        whole-extent and per-shard numbers consistent.
        """
        with self._lock:
            for name in self._extent_names(extents):
                self._stats[name] = self._analyze_one(name)
                with self._delta_lock:
                    self._deltas.pop(name, None)
                    self._tainted.discard(name)
                existing = self._partitions.get(name)
                if existing is not None:
                    self._build_partitioning(name, existing.attr, existing.parts)
            self._bump_version()
            return dict(self._stats)

    def stats(self, extent: str) -> Optional[ExtentStats]:
        """Statistics for ``extent`` — re-analyzed lazily when stale.

        Staleness is detected the same way stale indexes are: by extent-
        value identity (stores return a fresh ``frozenset`` whenever an
        extent changes).  Never-analyzed extents stay unanalyzed; only
        statistics that *exist but describe old data* are refreshed, so
        the cost model never silently prices plans with stale numbers.

        Refresh is **incremental when possible**: when every change since
        the last ANALYZE was a notified insert/delete
        (:meth:`note_insert` / :meth:`note_delete` — stores wired to the
        catalog call these), the cardinality and page count are read off
        the current extent value directly and per-attribute distinct
        counts / set sizes are kept as-is (lazily stale — the documented
        contract; see ROADMAP "Incremental statistics").  Incremental
        adjustments are counted in :attr:`stat_increments`, full
        re-analyzes in :attr:`stat_refreshes`; both bump the catalog
        version (the optimizer-visible numbers changed either way).
        """
        stale = self._stats.get(extent)
        if stale is None:
            return None
        if hasattr(self.db, "extent"):
            try:
                current = self.db.extent(extent)
            except Exception:
                return stale
            if current is not stale.source_rows:
                # check-then-act under the lock: concurrent planners over a
                # shared catalog must not both re-analyze (each bump would
                # needlessly invalidate the other's freshly cached plans)
                # and the counter increment must not lose updates
                with self._lock:
                    stale = self._stats.get(extent)
                    if stale is not None and current is stale.source_rows:
                        return stale  # another thread already refreshed
                    with self._delta_lock:
                        incremental = extent in self._deltas and extent not in self._tainted
                    if incremental:
                        # all changes were notified: exact cardinality from
                        # the new extent value, distinct counts stay lazy
                        from dataclasses import replace

                        pages = (
                            self.db.page_count(extent)
                            if hasattr(self.db, "page_count")
                            else stale.pages
                        )
                        fresh = replace(
                            stale,
                            cardinality=len(current),
                            pages=pages,
                            source_rows=current,
                            epoch=getattr(self.db, "epoch", 0),
                        )
                        with self._delta_lock:
                            self._deltas.pop(extent, None)
                        self.stat_increments += 1
                    else:
                        fresh = self._analyze_one(extent)
                        self.stat_refreshes += 1
                        with self._delta_lock:
                            self._deltas.pop(extent, None)
                            self._tainted.discard(extent)
                    self._stats[extent] = fresh
                    self._bump_version()
                return fresh
        return stale

    # -- incremental maintenance hooks ---------------------------------------
    def note_insert(self, extent: str, count: int = 1) -> None:
        """Record ``count`` notified row insertions into ``extent``.

        Stores wired to a catalog (both in-repo stores are) call this on
        every insert, which licenses the next stale-statistics hit to
        adjust cardinality incrementally instead of re-analyzing.
        """
        with self._delta_lock:
            self._deltas[extent] = self._deltas.get(extent, 0) + count

    def note_delete(self, extent: str, count: int = 1) -> None:
        """Record ``count`` notified row deletions from ``extent``."""
        with self._delta_lock:
            self._deltas[extent] = self._deltas.get(extent, 0) - count

    def note_replaced(self, extent: str) -> None:
        """Record an *unaccounted* bulk change (e.g. ``set_extent``):
        forgets the notified-delta marker so the next staleness hit runs a
        full re-analyze instead of trusting stale distinct counts."""
        with self._delta_lock:
            self._deltas.pop(extent, None)
            self._tainted.add(extent)

    def _extent_names(self, extents: Optional[Iterable[str]]) -> List[str]:
        if extents is not None:
            return list(extents)
        schema = getattr(self.db, "schema", None)
        if schema is not None:
            return list(schema.extent_names)
        return list(getattr(self.db, "extent_names"))

    def _analyze_one(self, name: str) -> ExtentStats:
        rows = self.db.extent(name)
        if hasattr(self.db, "page_count"):
            pages = self.db.page_count(name)
        else:
            pages = 0
        return self._stats_for_rows(name, rows, pages, epoch=getattr(self.db, "epoch", 0))

    def _stats_for_rows(
        self, name: str, rows: frozenset, pages: int, epoch: int = 0
    ) -> ExtentStats:
        """The ANALYZE pass over an explicit row set — shared by whole
        extents and the per-shard statistics of partitioned extents."""
        distinct_values: Dict[str, set] = {}
        set_sizes: Dict[str, List[int]] = {}
        for row in rows:
            for attr in row.attributes:
                value = row[attr]
                distinct_values.setdefault(attr, set()).add(value)
                if isinstance(value, frozenset):
                    set_sizes.setdefault(attr, []).append(len(value))
        return ExtentStats(
            extent=name,
            cardinality=len(rows),
            pages=pages,
            distinct={a: len(vs) for a, vs in distinct_values.items()},
            avg_set_size={
                a: (sum(sizes) / len(sizes) if sizes else 0.0)
                for a, sizes in set_sizes.items()
            },
            source_rows=rows,
            epoch=epoch,
        )

    # -- partitioned extents -------------------------------------------------
    def partition(self, extent: str, attr: str, parts: int):
        """Hash-partition ``extent`` on ``attr`` into ``parts`` shards.

        Registers (replacing any previous partitioning of the extent) a
        :class:`repro.shard.partition.PartitionedExtent` snapshot with
        per-partition statistics, and bumps the catalog version — a new
        physical organization is optimizer-visible state, exactly like a
        new index.  Shards are derived with the process-stable hash in
        :mod:`repro.shard.partition`, so worker processes agree on shard
        membership.
        """
        with self._lock:
            pe = self._build_partitioning(extent, attr, parts)
            self._bump_version()
            return pe

    def _build_partitioning(self, extent: str, attr: str, parts: int):
        """Derive + register the shards of one extent (no version bump)."""
        from repro.shard.partition import PartitionedExtent, partition_rows

        rows = self.db.extent(extent)
        shards = partition_rows(rows, attr, parts)
        shard_stats = tuple(
            self._stats_for_rows(extent, shard, pages=0) for shard in shards
        )
        pe = PartitionedExtent(
            extent=extent,
            attr=attr,
            parts=parts,
            shards=tuple(shards),
            shard_stats=shard_stats,
            source_rows=rows,
        )
        self._partitions[extent] = pe
        return pe

    def partitioning(self, extent: str):
        """The registered partitioning of ``extent`` (or ``None``) —
        lazily re-derived when stale, by the same extent-value identity
        handshake statistics and indexes use.  Refreshes are counted in
        :attr:`partition_refreshes` and bump the version (shard contents
        and per-partition statistics changed)."""
        pe = self._partitions.get(extent)
        if pe is None:
            return None
        if hasattr(self.db, "extent"):
            try:
                current = self.db.extent(extent)
            except Exception:
                return pe
            if current is not pe.source_rows:
                with self._lock:
                    pe = self._partitions.get(extent)
                    if pe is not None and current is pe.source_rows:
                        return pe  # another thread already re-partitioned
                    pe = self._build_partitioning(extent, pe.attr, pe.parts)
                    self.partition_refreshes += 1
                    self._bump_version()
        return pe

    @property
    def partitionings(self) -> List:
        return list(self._partitions.values())

    def partition_snapshot(self) -> Dict[str, object]:
        """A consistent point-in-time copy of every registered
        partitioning — plain data, safe to hand to forked worker
        processes (workers must never take this catalog's lock).

        Runs the staleness handshake per entry first (via
        :meth:`partitioning`), so the snapshot always describes the
        *current* extent values — a snapshot of stale shards would make
        parallel fragments read pre-mutation data."""
        out: Dict[str, object] = {}
        for name in list(self._partitions):
            pe = self.partitioning(name)
            if pe is not None:
                out[name] = pe
        return out

    # -- indexes -------------------------------------------------------------
    def create_index(
        self,
        extent: str,
        attr: str,
        name: Optional[str] = None,
        multi: bool = False,
    ) -> NamedIndex:
        """Build and register a hash index on ``extent.attr``.

        Replaces any previous index on the same ``(extent, attr)`` pair;
        reusing a name for a *different* extent/attribute is an error
        (plans resolve indexes by name — a silently re-pointed name would
        make them probe the wrong attribute).  Re-issuing an identical
        ``create_index`` whose snapshot is already current (same extent
        value, same name and kind) returns the registered index unchanged
        — no rebuild, no version bump.
        """
        index_name = name or f"idx_{extent}_{attr}"
        # the whole body runs under the lock: execution-time staleness
        # rebuilds may arrive from several worker threads at once, and the
        # registry must never be observable half-updated (nor should two
        # racing rebuilds each pay an O(n) build and a cache-invalidating
        # version bump)
        with self._lock:
            existing = self._by_name.get(index_name)
            if existing is not None and (existing.extent, existing.attr) != (extent, attr):
                raise StorageError(
                    f"index name {index_name!r} already registered for "
                    f"{existing.extent}.{existing.attr}"
                )
            rows = self.db.extent(extent)
            replaced = self._indexes.get((extent, attr))
            if (
                replaced is not None
                and replaced.name == index_name
                and replaced.multi == multi
                and replaced.source_rows is rows
            ):
                # already fresh for the current extent value — a concurrent
                # rebuild beat us here; rebuilding again would only bump
                # the version and invalidate every cached plan for nothing
                return replaced
            built = HashIndex(rows, key=lambda row: row[attr], multi=multi)
            named = NamedIndex(
                name=index_name,
                extent=extent,
                attr=attr,
                multi=multi,
                index=built,
                built_cardinality=len(rows),
                source_rows=rows,
            )
            if replaced is not None and replaced.name != index_name:
                self._by_name.pop(replaced.name, None)
            self._indexes[(extent, attr)] = named
            self._by_name[index_name] = named
            self._bump_version()
            return named

    def index_on(self, extent: str, attr: str) -> Optional[NamedIndex]:
        return self._indexes.get((extent, attr))

    def index_named(self, name: str) -> Optional[NamedIndex]:
        return self._by_name.get(name)

    @property
    def indexes(self) -> List[NamedIndex]:
        return list(self._indexes.values())

    def fingerprint(self) -> str:
        """A content-based digest of everything the optimizer can see.

        Unlike :attr:`version` — a monotonic counter that restarts from
        zero in every process — the fingerprint hashes the *values* of
        the registered statistics, indexes and partitionings, so two
        catalogs rebuilt from the same data in different processes agree.
        The plan-cache warm start (PR 7/PR 9) persists it next to the
        cached plans: a restore matches on content, not on the rebuilt
        catalog happening to land on the same in-memory version number.
        """
        import hashlib

        with self._lock:
            stats = sorted(
                (
                    s.extent,
                    s.cardinality,
                    s.pages,
                    sorted(s.distinct.items()),
                    sorted(s.avg_set_size.items()),
                )
                for s in self._stats.values()
            )
            indexes = sorted(
                (n.name, n.extent, n.attr, n.multi, n.built_cardinality)
                for n in self._indexes.values()
            )
            partitions = sorted(
                (pe.extent, pe.attr, pe.parts, list(pe.cardinalities))
                for pe in self._partitions.values()
            )
        payload = repr((stats, indexes, partitions)).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def refresh(self) -> None:
        """Rebuild every registered index, re-analyze analyzed extents and
        re-derive registered partitionings (call after bulk loads —
        statistics, indexes and shards are all snapshots)."""
        for named in list(self._indexes.values()):
            self.create_index(named.extent, named.attr, named.name, named.multi)
        if self._stats:
            self.analyze(list(self._stats))
        with self._lock:
            rebuilt = False
            for pe in list(self._partitions.values()):
                if pe.extent not in self._stats:  # analyze() already redid these
                    self._build_partitioning(pe.extent, pe.attr, pe.parts)
                    rebuilt = True
            if rebuilt:
                self._bump_version()
