"""Catalog: per-extent statistics and named persistent indexes.

The paper's Section 5.1 payoff — "the optimizer may choose from a number
of different join processing strategies" — requires the optimizer to know
something about the data.  This module is that knowledge:

* :class:`ExtentStats` — cardinality, page count, per-attribute distinct
  counts, and average set-valued-attribute size for one extent, computed
  by :meth:`Catalog.analyze` (an ANALYZE-style full pass);
* named persistent :class:`HashIndex` es registered per ``(extent,
  attribute)`` — the access paths behind the planner's index-scan and
  index-nested-loop-join alternatives.  ``multi=True`` registers an
  *element* index over a set-valued attribute (``p.pid ∈ s.parts``-style
  probes).

The catalog works against any store satisfying the interpreter protocol
(:meth:`extent`); paged stores additionally contribute real
``page_count``/``extent_size`` numbers.  The staleness machinery below
additionally requires ``extent()`` to be **identity-stable**: the same
``frozenset`` object must come back until the extent actually changes
(both in-repo stores cache it that way).  A store that rebuilds the set
per call would not break correctness, but would make every lookup appear
stale and re-run ANALYZE each time.  Statistics and indexes are
snapshots, but stale ones are caught automatically: both record the
extent *value* they were computed from, and stores hand out a fresh
``frozenset`` whenever an extent changes, so an identity comparison
detects staleness.  Indexes are rebuilt at execution time; statistics are
re-analyzed lazily on the next :meth:`stats` lookup (counted in
:attr:`Catalog.stat_refreshes`), so the cost model never silently prices
plans with numbers describing old data.  :meth:`refresh` remains for
eager bulk refresh.  The cost model in :mod:`repro.engine.cost` never
*requires* statistics — unknown extents fall back to defaults — so a
catalog can be introduced incrementally.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.datamodel.errors import StorageError
from repro.datamodel.values import Value, VTuple
from repro.storage.index import HashIndex


@dataclass(frozen=True)
class ExtentStats:
    """One extent's ANALYZE output.

    ``source_rows`` keeps the extent value the statistics were computed
    from — the same identity-based staleness handshake named indexes use:
    stores hand out a fresh ``frozenset`` whenever an extent changes, so
    ``db.extent(name) is not stats.source_rows`` detects stale statistics
    (including same-cardinality replacements) without comparing rows.
    """

    extent: str
    cardinality: int
    pages: int
    #: per top-level attribute: number of distinct values
    distinct: Mapping[str, int] = field(default_factory=dict)
    #: per set-valued top-level attribute: mean element count
    avg_set_size: Mapping[str, float] = field(default_factory=dict)
    #: extent value identity at ANALYZE time (not part of equality)
    source_rows: frozenset = field(default_factory=frozenset, compare=False, repr=False)

    def distinct_count(self, attr: str) -> Optional[int]:
        return self.distinct.get(attr)

    def set_size(self, attr: str) -> Optional[float]:
        return self.avg_set_size.get(attr)


@dataclass
class NamedIndex:
    """A registered, persistent hash index over one extent attribute.

    ``multi`` indexes a set-valued attribute by its *elements*.  The index
    is an eager snapshot; ``source_rows`` keeps the extent value it was
    built from (stores return a fresh ``frozenset`` whenever the extent
    changes, so an identity comparison detects staleness — including
    same-cardinality replacements) and ``built_cardinality`` records the
    size for the cost model.
    """

    name: str
    extent: str
    attr: str
    multi: bool
    index: HashIndex
    built_cardinality: int
    source_rows: frozenset

    def lookup(self, key: Value) -> List[VTuple]:
        return self.index.lookup(key)


class Catalog:
    """Statistics + index registry over one database."""

    def __init__(self, db) -> None:
        self.db = db
        self._stats: Dict[str, ExtentStats] = {}
        self._indexes: Dict[Tuple[str, str], NamedIndex] = {}
        self._by_name: Dict[str, NamedIndex] = {}
        #: how many times :meth:`stats` lazily re-analyzed a stale extent
        #: (the statistics analogue of the runtime index-rebuild counter)
        self.stat_refreshes: int = 0
        #: monotonic catalog version: bumped whenever the optimizer-visible
        #: state changes — :meth:`analyze` (new statistics),
        #: :meth:`create_index` (new/rebuilt access path), and the lazy
        #: stale-statistics refresh inside :meth:`stats`.  Plan caches key
        #: on it: a cached plan is valid only for the version it was
        #: planned under, so an ANALYZE or index change invalidates every
        #: cached plan at the next lookup.
        self.version: int = 0
        # reentrant: the lazy refresh in stats() holds it across
        # _analyze_one and the version bump
        self._lock = threading.RLock()
        # the catalog is *the database's* catalog: registering it on the
        # store lets execution runtimes find the indexes without explicit
        # threading (last constructed catalog wins)
        db.catalog = self

    def _bump_version(self) -> None:
        # += on an int is a read-modify-write; concurrent execution-time
        # index rebuilds would otherwise lose increments
        with self._lock:
            self.version += 1

    # -- statistics ----------------------------------------------------------
    def analyze(self, extents: Optional[Iterable[str]] = None) -> Dict[str, ExtentStats]:
        """Full-pass statistics for ``extents`` (default: every extent)."""
        for name in self._extent_names(extents):
            self._stats[name] = self._analyze_one(name)
        self._bump_version()
        return dict(self._stats)

    def stats(self, extent: str) -> Optional[ExtentStats]:
        """Statistics for ``extent`` — re-analyzed lazily when stale.

        Staleness is detected the same way stale indexes are: by extent-
        value identity (stores return a fresh ``frozenset`` whenever an
        extent changes).  Never-analyzed extents stay unanalyzed; only
        statistics that *exist but describe old data* are refreshed, so
        the cost model never silently prices plans with stale numbers.
        Refreshes are counted in :attr:`stat_refreshes`.
        """
        stale = self._stats.get(extent)
        if stale is None:
            return None
        if hasattr(self.db, "extent"):
            try:
                current = self.db.extent(extent)
            except Exception:
                return stale
            if current is not stale.source_rows:
                # check-then-act under the lock: concurrent planners over a
                # shared catalog must not both re-analyze (each bump would
                # needlessly invalidate the other's freshly cached plans)
                # and the counter increment must not lose updates
                with self._lock:
                    stale = self._stats.get(extent)
                    if stale is not None and current is stale.source_rows:
                        return stale  # another thread already refreshed
                    fresh = self._analyze_one(extent)
                    self._stats[extent] = fresh
                    self.stat_refreshes += 1
                    self._bump_version()
                return fresh
        return stale

    def _extent_names(self, extents: Optional[Iterable[str]]) -> List[str]:
        if extents is not None:
            return list(extents)
        schema = getattr(self.db, "schema", None)
        if schema is not None:
            return list(schema.extent_names)
        return list(getattr(self.db, "extent_names"))

    def _analyze_one(self, name: str) -> ExtentStats:
        rows = self.db.extent(name)
        distinct_values: Dict[str, set] = {}
        set_sizes: Dict[str, List[int]] = {}
        for row in rows:
            for attr in row.attributes:
                value = row[attr]
                distinct_values.setdefault(attr, set()).add(value)
                if isinstance(value, frozenset):
                    set_sizes.setdefault(attr, []).append(len(value))
        if hasattr(self.db, "page_count"):
            pages = self.db.page_count(name)
        else:
            pages = 0
        return ExtentStats(
            extent=name,
            cardinality=len(rows),
            pages=pages,
            distinct={a: len(vs) for a, vs in distinct_values.items()},
            avg_set_size={
                a: (sum(sizes) / len(sizes) if sizes else 0.0)
                for a, sizes in set_sizes.items()
            },
            source_rows=rows,
        )

    # -- indexes -------------------------------------------------------------
    def create_index(
        self,
        extent: str,
        attr: str,
        name: Optional[str] = None,
        multi: bool = False,
    ) -> NamedIndex:
        """Build and register a hash index on ``extent.attr``.

        Replaces any previous index on the same ``(extent, attr)`` pair;
        reusing a name for a *different* extent/attribute is an error
        (plans resolve indexes by name — a silently re-pointed name would
        make them probe the wrong attribute).  Re-issuing an identical
        ``create_index`` whose snapshot is already current (same extent
        value, same name and kind) returns the registered index unchanged
        — no rebuild, no version bump.
        """
        index_name = name or f"idx_{extent}_{attr}"
        # the whole body runs under the lock: execution-time staleness
        # rebuilds may arrive from several worker threads at once, and the
        # registry must never be observable half-updated (nor should two
        # racing rebuilds each pay an O(n) build and a cache-invalidating
        # version bump)
        with self._lock:
            existing = self._by_name.get(index_name)
            if existing is not None and (existing.extent, existing.attr) != (extent, attr):
                raise StorageError(
                    f"index name {index_name!r} already registered for "
                    f"{existing.extent}.{existing.attr}"
                )
            rows = self.db.extent(extent)
            replaced = self._indexes.get((extent, attr))
            if (
                replaced is not None
                and replaced.name == index_name
                and replaced.multi == multi
                and replaced.source_rows is rows
            ):
                # already fresh for the current extent value — a concurrent
                # rebuild beat us here; rebuilding again would only bump
                # the version and invalidate every cached plan for nothing
                return replaced
            built = HashIndex(rows, key=lambda row: row[attr], multi=multi)
            named = NamedIndex(
                name=index_name,
                extent=extent,
                attr=attr,
                multi=multi,
                index=built,
                built_cardinality=len(rows),
                source_rows=rows,
            )
            if replaced is not None and replaced.name != index_name:
                self._by_name.pop(replaced.name, None)
            self._indexes[(extent, attr)] = named
            self._by_name[index_name] = named
            self._bump_version()
            return named

    def index_on(self, extent: str, attr: str) -> Optional[NamedIndex]:
        return self._indexes.get((extent, attr))

    def index_named(self, name: str) -> Optional[NamedIndex]:
        return self._by_name.get(name)

    @property
    def indexes(self) -> List[NamedIndex]:
        return list(self._indexes.values())

    def refresh(self) -> None:
        """Rebuild every registered index and re-analyze analyzed extents
        (call after bulk loads — statistics and indexes are snapshots)."""
        for named in list(self._indexes.values()):
            self.create_index(named.extent, named.attr, named.name, named.multi)
        if self._stats:
            self.analyze(list(self._stats))
