"""Hash indexes over extents.

The paper's point about rewriting to joins is that the optimizer then gets
to *choose* among implementations — "index nested-loop join, sort-merge
join, hash join, etc." (Section 6).  The index here backs the index
nested-loop alternative and the attribute lookups in examples.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

from repro.datamodel.errors import StorageError
from repro.datamodel.values import Value, VTuple


class HashIndex:
    """An equality index from a key function to lists of tuples.

    Built eagerly from an iterable of tuples; supports multi-valued keys so
    a set-valued attribute can be indexed by its *elements* (useful for
    ``p.pid ∈ s.parts`` style predicates).
    """

    def __init__(
        self,
        rows: Iterable[VTuple],
        key: Callable[[VTuple], Value],
        multi: bool = False,
    ) -> None:
        self._buckets: Dict[Value, List[VTuple]] = {}
        self._multi = multi
        for row in rows:
            key_value = key(row)
            if multi:
                if not isinstance(key_value, frozenset):
                    raise StorageError("multi-valued index key must be a set")
                for element in key_value:
                    self._buckets.setdefault(element, []).append(row)
            else:
                self._buckets.setdefault(key_value, []).append(row)

    def lookup(self, key_value: Value) -> List[VTuple]:
        return self._buckets.get(key_value, [])

    def __contains__(self, key_value: Value) -> bool:
        return key_value in self._buckets

    def __len__(self) -> int:
        return len(self._buckets)


def attribute_index(rows: Iterable[VTuple], attr: str) -> HashIndex:
    """Index tuples by one top-level attribute."""
    return HashIndex(rows, key=lambda row: row[attr])


def element_index(rows: Iterable[VTuple], set_attr: str) -> HashIndex:
    """Index tuples by each element of a set-valued attribute."""
    return HashIndex(rows, key=lambda row: row[set_attr], multi=True)
