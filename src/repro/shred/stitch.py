"""The stitching operator: reassemble a nested result from flat subplans.

:class:`StitchNest` is the physical counterpart of the logical
:class:`~repro.adl.ast.Stitch` node.  It has two children:

* ``inner`` — the *flat* subplan: the plain join
  ``left ⋈⟨x,y : p⟩ right``, planned through the full pipeline (so it
  may be a hash join either way around, an index nested-loop join, or a
  gather over a partitioned hash join when the shard tier wins);
* ``outer`` — the left operand itself, re-streamed so dangling left
  tuples keep their empty set (the nestjoin's no-tuple-loss contract).

Evaluation consumes the inner subplan once (a pipeline break — the
groups must be complete before any output row is emitted), splits every
flat row ``z`` back into its operands via the synthetic key
(``x = z[key_attrs]``, ``y = z`` without ``key_attrs``), evaluates the
result function per pair into per-key groups, and then streams the outer
subplan attaching each left tuple's (possibly empty) group.

Known simplification (documented in ROADMAP): an *unpinned* run reads
the left source twice — once inside the inner join, once as the outer
stream — so a concurrent mutation between the two reads can tear the
result.  Snapshot-pinned executions (PR 7) read both from the same
epoch and are exact.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple

from repro.adl import ast as A
from repro.datamodel.values import VTuple, Value
from repro.engine.plan import DEFAULT_BATCH_SIZE, Batch, ExecRuntime, PlanNode


class StitchNest(PlanNode):
    """Group a flat join's output by the synthetic key and re-attach the
    groups to the re-streamed outer subplan."""

    label = "StitchNest"
    break_note = "groups flat join"

    def __init__(
        self,
        lvar: str,
        rvar: str,
        as_attr: str,
        result: A.Expr,
        key_attrs: Tuple[str, ...],
        outer: PlanNode,
        inner: PlanNode,
    ) -> None:
        self.lvar = lvar
        self.rvar = rvar
        self.as_attr = as_attr
        self.result = result
        self.key_attrs = tuple(key_attrs)
        self.outer = outer
        self.inner = inner

    def children(self):
        return (self.outer, self.inner)

    def describe(self) -> str:
        from repro.adl.pretty import pretty

        return (
            f"{{{', '.join(self.key_attrs)}}} -> {self.as_attr} ; "
            f"{self.lvar},{self.rvar}: {pretty(self.result)}"
        )

    def _build_groups(self, rt: ExecRuntime) -> Dict[VTuple, Set[Value]]:
        """Consume the inner flat subplan and fold it into per-key groups.

        Each flat row splits into its originating pair through the
        synthetic key; the result function is evaluated per pair.  Under
        batch mode the inner subplan already executes batched —
        ``_consume`` drains ``iterate_batches`` — so the flat join's
        kernels run regardless of how the stitch itself iterates.
        """
        result_fn = rt.compiled(self.result)
        key_attrs = self.key_attrs
        groups: Dict[VTuple, Set[Value]] = {}
        env: Dict[str, Value] = {}
        stats = rt.stats
        for z in self._consume(self.inner, rt):
            stats.tuples_visited += 1
            x = z.subscript(key_attrs)
            env[self.lvar] = x
            env[self.rvar] = z.drop(key_attrs)
            groups.setdefault(x, set()).add(result_fn(env))
        return groups

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        groups = self._build_groups(rt)
        as_attr = self.as_attr
        empty: frozenset = frozenset()
        stats = rt.stats
        for x in self._input(self.outer, rt):
            stats.tuples_visited += 1
            group = groups.get(x)
            yield x.update_except(
                {as_attr: frozenset(group) if group else empty}
            )

    def iterate_batches(self, rt: ExecRuntime) -> Iterator[Batch]:
        # native batch path: the group build consumes the inner subplan's
        # batched execution, then the outer stream is stitched chunk-wise
        groups = self._build_groups(rt)
        as_attr = self.as_attr
        empty: frozenset = frozenset()
        stats = rt.stats
        get = groups.get
        for batch in self.outer.stream_batches(rt):
            rows = batch.rows
            stats.tuples_visited += len(rows)
            out = []
            for x in rows:
                group = get(x)
                out.append(
                    x.update_except(
                        {as_attr: frozenset(group) if group else empty}
                    )
                )
            stats.batches_emitted += 1
            yield Batch(out)
