"""The shredding translation: ``NestJoin`` → ``Stitch``.

A nestjoin ``L ⊣⟨x,y : p ; f ; a⟩ R`` computes, per left tuple, the set
``{ f(x,y) | y ∈ R, p(x,y) }`` and attaches it as attribute ``a``.  The
shredded form evaluates the same query as a DAG of *flat* subplans:

* the **outer** flat subplan is ``L`` itself;
* the **inner** flat subplan is the plain join ``L ⋈⟨x,y : p⟩ R`` — a
  flat relation of concatenated pairs;
* the **stitch** groups the inner output by the synthetic key (the full
  left tuple, recoverable as ``z[key_attrs]`` because ``key_attrs``
  lists *every* top-level attribute of ``L``), computes ``f`` per pair,
  and re-streams the outer subplan so dangling left tuples keep their
  empty set.

The translation is *guarded* — it declines (returns ``None``) unless the
flat decomposition is provably lossless:

* the top-level attributes of both operands must be statically known
  (the :class:`~repro.rewrite.common.RewriteContext` checker supplies
  them) — ``key_attrs`` must cover the left tuple exactly;
* the operand attribute sets must be disjoint, so the flat concatenation
  ``z = x ∘ y`` splits back into ``x`` and ``y`` unambiguously;
* the nestjoin must be closed (no free variables): a correlated operand
  cannot run as a standalone flat subplan;
* ``as_attr`` must be fresh on the left side (the stitch attaches it).

Eligible nestjoins anywhere in a closed expression are translated
bottom-up; :func:`shred_expr` returns ``None`` when nothing changed, so
the optimizer's priced-candidate hook can tell "no shredded alternative
exists" from "the alternative priced worse".
"""

from __future__ import annotations

from typing import Optional

from repro.adl import ast as A
from repro.adl.freevars import free_vars
from repro.rewrite.common import RewriteContext


def shred_nestjoin(expr: A.NestJoin, ctx: RewriteContext) -> Optional[A.Stitch]:
    """Translate one nestjoin into its stitch form, or ``None`` when a
    guard fails (see the module docstring for the guard list)."""
    if not isinstance(expr, A.NestJoin):
        return None
    if free_vars(expr):
        # correlated operands (or a pred/result using outer variables)
        # cannot ship as standalone flat subplans
        return None
    left_attrs = ctx.tuple_attrs(expr.left)
    right_attrs = ctx.tuple_attrs(expr.right)
    if not left_attrs or not right_attrs:
        # unknown (or empty) operand shapes: the synthetic key could not
        # be proven to cover the left tuple
        return None
    if set(left_attrs) & set(right_attrs):
        # the flat concatenation z = x ∘ y must split unambiguously
        return None
    if expr.as_attr in left_attrs:
        return None
    return A.Stitch(
        expr.left,
        expr.right,
        expr.lvar,
        expr.rvar,
        expr.pred,
        expr.as_attr,
        expr.result,
        tuple(left_attrs),
    )


def shred_expr(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """Translate every eligible nestjoin in ``expr`` (bottom-up) into its
    stitch form.  Returns the shredded expression, or ``None`` when no
    nestjoin was eligible — the caller then has no candidate to price."""
    changed = False

    def rec(node: A.Expr) -> A.Expr:
        nonlocal changed
        node = node.map_children(rec)
        if isinstance(node, A.NestJoin):
            shredded = shred_nestjoin(node, ctx)
            if shredded is not None:
                changed = True
                return shredded
        return node

    out = rec(expr)
    return out if changed else None
