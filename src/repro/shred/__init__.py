"""Query shredding (PR 9): flat-relational evaluation of nested queries.

The paper rewrites nested OOSQL into join queries but stops at the
nestjoin — an operator that *produces* a nested result and therefore
evaluates its grouping fused with the join.  Query shredding (after
Cheney/Lindley/Wadler's shredded evaluation of nested queries) goes one
step further: decompose the nested-result plan into a DAG of *flat*
subplans — one per nesting level, linked by synthetic key attributes —
plus a stitching operator that reassembles the nested result from the
flat outputs.

The payoff is that each flat subplan is a first-class citizen of the
existing pipeline: the inner flat join is priced by the cost model,
reordered by the join-order DP, eligible for partitioned hash joins in
the shard tier and for batch kernels in the vectorized tier — none of
which the fused nestjoin can use.  Shredding enters the optimizer as a
*priced* rewrite candidate: the cost model compares the shredded plan
against the unshredded nestjoin and shredding wins only when estimated
cheaper (the paper's tiny queries provably stay unshredded).

Modules:

* :mod:`~repro.shred.translate` — the guarded ``NestJoin`` → ``Stitch``
  translation (:func:`shred_expr`);
* :mod:`~repro.shred.stitch` — the :class:`~repro.shred.stitch.StitchNest`
  physical operator reassembling the nested result.
"""

from repro.shred.stitch import StitchNest
from repro.shred.translate import shred_expr, shred_nestjoin

__all__ = ["StitchNest", "shred_expr", "shred_nestjoin"]
