"""Threshold-gated slow-query log (PR 10).

A bounded deque of queries whose wall time crossed ``threshold_s``; each
entry carries the query text, the rendered plan, and (when the run was
traced) the trace summary — enough context to diagnose the slow run
without re-running it.  ``threshold_s=None`` disables logging entirely.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional


class SlowQueryLog:
    def __init__(
        self, threshold_s: Optional[float] = None, *, capacity: int = 32
    ) -> None:
        self.threshold_s = threshold_s
        self._entries: deque = deque(maxlen=capacity)
        self.logged = 0

    def maybe_log(
        self,
        *,
        shape: str,
        wall_s: float,
        plan_text: str = "",
        trace_summary: Optional[dict] = None,
        session_id: Optional[str] = None,
    ) -> bool:
        if self.threshold_s is None or wall_s < self.threshold_s:
            return False
        self._entries.append(
            {
                "shape": shape,
                "wall_s": wall_s,
                "plan": plan_text,
                "trace": trace_summary,
                "session_id": session_id,
            }
        )
        self.logged += 1
        return True

    def entries(self) -> List[dict]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
