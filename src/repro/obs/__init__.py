"""Query observability (PR 10): tracing, metrics, estimate feedback.

* :class:`TraceRecorder` — per-operator execution tracing, attached via
  ``ExecRuntime(trace=...)``; drives EXPLAIN ANALYZE and the
  cross-process span assembly;
* :class:`MetricsRegistry` (+ :class:`Counter` / :class:`Gauge` /
  :class:`Histogram`) — the unified metrics surface with JSON snapshot
  and Prometheus-style export;
* :class:`MisestimateStore` — bounded per-shape estimate-vs-actual miss
  records, the hook for the replan trigger (ROADMAP open item 5);
* :class:`SlowQueryLog` — threshold-gated slow-query capture.
"""

from repro.obs.analyze import AnalyzeResult
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.misestimate import MisestimateStore
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import OpTrace, TraceRecorder, q_error

__all__ = [
    "AnalyzeResult",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MisestimateStore",
    "OpTrace",
    "SlowQueryLog",
    "TraceRecorder",
    "q_error",
]
