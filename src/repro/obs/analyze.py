"""EXPLAIN ANALYZE result object (PR 10)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class AnalyzeResult:
    """What ``Executor.explain_analyze`` returns: the query's rows, the
    annotated plan text, the JSON-friendly trace summary, and the
    operator-level misestimate records."""

    rows: frozenset
    text: str
    trace: dict
    misestimates: List[dict] = field(default_factory=list)

    def __str__(self) -> str:
        return self.text
