"""Bounded per-shape store of cardinality-estimate misses (PR 10).

This is the concrete hook for ROADMAP open item 5 (feed measured
cardinalities back into the catalog): every traced run whose per-operator
q-error exceeds the service threshold records a ``kind="operator"`` entry
here, and the PR-7 epoch-mismatch records (plan compiled against one
visibility epoch, executed against another) migrate here as
``kind="epoch-mismatch"`` — one estimate-feedback surface, not two.

Records are keyed by plan shape so a future replan trigger can ask "has
this shape misestimated recently?" without scanning a global log; each
shape keeps a bounded deque of recent records and shapes themselves are
evicted LRU once ``max_shapes`` is reached.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Dict, List


class MisestimateStore:
    """Recent estimate-vs-actual misses, bounded per shape and overall."""

    def __init__(self, *, per_shape: int = 8, max_shapes: int = 32) -> None:
        self.per_shape = per_shape
        self.max_shapes = max_shapes
        self._by_shape: "OrderedDict[str, deque]" = OrderedDict()
        self.recorded = 0

    def record(self, shape: str, *, kind: str = "operator", **fields) -> dict:
        entry = {"shape": shape, "kind": kind}
        entry.update(fields)
        bucket = self._by_shape.get(shape)
        if bucket is None:
            bucket = self._by_shape[shape] = deque(maxlen=self.per_shape)
            while len(self._by_shape) > self.max_shapes:
                self._by_shape.popitem(last=False)
        else:
            self._by_shape.move_to_end(shape)
        bucket.append(entry)
        self.recorded += 1
        return entry

    def shapes(self) -> List[str]:
        return list(self._by_shape)

    def for_shape(self, shape: str) -> List[dict]:
        return list(self._by_shape.get(shape, ()))

    def snapshot(self) -> Dict[str, List[dict]]:
        return {shape: list(bucket) for shape, bucket in self._by_shape.items()}

    def records(self, kind: str = None) -> List[dict]:
        out = []
        for bucket in self._by_shape.values():
            for entry in bucket:
                if kind is None or entry["kind"] == kind:
                    out.append(entry)
        return out

    def epoch_mismatch_view(self) -> List[dict]:
        """The PR-7 ``stats()["epoch_mismatches"]`` compatibility view:
        the epoch-mismatch records with exactly their historical keys."""
        return [
            {
                "shape": entry["shape"],
                "planned_epoch": entry.get("planned_epoch"),
                "executed_epoch": entry.get("executed_epoch"),
                "est_rows": entry.get("est_rows"),
                "actual_rows": entry.get("actual_rows"),
            }
            for entry in self.records("epoch-mismatch")
        ]

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._by_shape.values())
