"""Per-operator execution tracing (PR 10).

A :class:`TraceRecorder` attached to an :class:`~repro.engine.plan.ExecRuntime`
(``ExecRuntime(trace=recorder)``) observes every plan node's streaming
interface: each node's ``stream()`` / ``stream_batches()`` wrapper routes
the underlying ``iterate()`` / ``iterate_batches()`` generator through the
recorder, which counts rows and batches out, accumulates inclusive wall
time per ``next()`` call, and records the *fill time* — the delay between
opening the iterator and its first yield, which for pipeline breakers is
the time spent materializing the input.

Overhead contract (the PR-6 deadline discipline, applied to tracing):

* **untraced runs pay nothing** — ``stream()`` tests ``rt.trace is None``
  once per operator *open* (not per row) and returns the raw iterator,
  so the hot loops are byte-identical to the pre-tracing engine;
* **traced runs pay one clock read and a few attribute bumps per row** —
  no allocation per row, no callback indirection.

Cross-process spans: partitioned operators thread ``trace_id`` into every
shipped :class:`~repro.shard.fragment.FragmentSpec`; workers return a span
record piggybacked on the stats snapshot (under the ``"_span"`` key, which
:func:`~repro.shard.fragment.merge_stats_snapshot` skips), and the gather
hands it back to the recorder together with the retry/degradation events
from :meth:`~repro.shard.executor.ParallelExecutor.run_fragments` — so one
traced parallel query yields a complete tree spanning coordinator and
pool, failed attempts included.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, Iterator, List, Optional

from repro.engine.cost import format_estimate

#: process-wide monotonic trace ids — stable, printable, no clock reads
_TRACE_IDS = itertools.count(1)


def _fmt_rows(value) -> str:
    if value is None:
        return "?"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.1f}"
    return str(int(value))


def q_error(est: Optional[float], actual: int) -> Optional[float]:
    """The symmetric cardinality q-error ``max(est/actual, actual/est)``
    with both sides floored at 1 row; ``None`` when there is no estimate
    (heuristic plans carry none)."""
    if est is None:
        return None
    e = max(float(est), 1.0)
    a = max(float(actual), 1.0)
    return max(e / a, a / e)


class OpTrace:
    """Per-operator record: rows/batches out, inclusive wall time, fill
    time to first row, and how many times the operator was opened."""

    __slots__ = (
        "label",
        "detail",
        "est_rows",
        "rows_out",
        "batches_out",
        "wall_s",
        "first_row_s",
        "calls",
    )

    def __init__(self, label: str, detail: str, est_rows) -> None:
        self.label = label
        self.detail = detail
        self.est_rows = est_rows
        self.rows_out = 0
        self.batches_out = 0
        self.wall_s = 0.0
        self.first_row_s: Optional[float] = None
        self.calls = 0

    def snapshot(self) -> dict:
        return {
            "label": self.label,
            "detail": self.detail,
            "est_rows": self.est_rows,
            "rows_out": self.rows_out,
            "batches_out": self.batches_out,
            "wall_s": self.wall_s,
            "first_row_s": self.first_row_s,
            "calls": self.calls,
        }


class TraceRecorder:
    """One traced run: per-operator records keyed by plan-node identity,
    plus cross-process fragment spans and gather events.

    The recorder holds strong references to the nodes it has seen so
    ``id()`` keys can never be recycled within a run.
    """

    def __init__(self, *, q_error_threshold: float = 4.0) -> None:
        self.trace_id = f"t{next(_TRACE_IDS)}"
        self.q_error_threshold = q_error_threshold
        self.records: Dict[int, OpTrace] = {}
        self._nodes: Dict[int, object] = {}
        #: per-gather-node fragment span records shipped back from workers
        self.fragment_spans: Dict[int, List[dict]] = {}
        #: per-gather-node run_fragments event dict (mode, retries,
        #: degraded, breaker, attempts log)
        self.gather_events: Dict[int, dict] = {}

    # -- recording ----------------------------------------------------------
    def _record(self, node) -> OpTrace:
        key = id(node)
        rec = self.records.get(key)
        if rec is None:
            rec = OpTrace(node.label, node.describe(), node.est_rows)
            self.records[key] = rec
            self._nodes[key] = node
        return rec

    def wrap_iter(self, node, it: Iterator) -> Iterator:
        """Meter a tuple iterator: rows out, inclusive wall time, and the
        fill time from open to first yield."""
        rec = self._record(node)
        rec.calls += 1
        first = rec.first_row_s is None
        opened = time.perf_counter()
        start = opened
        for row in it:
            now = time.perf_counter()
            rec.wall_s += now - start
            if first:
                rec.first_row_s = now - opened
                first = False
            rec.rows_out += 1
            yield row
            start = time.perf_counter()
        rec.wall_s += time.perf_counter() - start

    def wrap_batches(self, node, it: Iterator) -> Iterator:
        """Meter a batch iterator: batches and rows out, wall, fill."""
        rec = self._record(node)
        rec.calls += 1
        first = rec.first_row_s is None
        opened = time.perf_counter()
        start = opened
        for batch in it:
            now = time.perf_counter()
            rec.wall_s += now - start
            if first:
                rec.first_row_s = now - opened
                first = False
            rec.batches_out += 1
            rec.rows_out += len(batch)
            yield batch
            start = time.perf_counter()
        rec.wall_s += time.perf_counter() - start

    def record_result(self, node, rows: int, wall_s: float) -> None:
        """Record a node that produced its result in one shot (e.g. the
        direct-evaluation path of ``EvalExpr``)."""
        rec = self._record(node)
        rec.calls += 1
        rec.rows_out += rows
        rec.wall_s += wall_s
        if rec.first_row_s is None:
            rec.first_row_s = wall_s

    def add_fragment_span(self, node, span: dict) -> None:
        self._record(node)
        self.fragment_spans.setdefault(id(node), []).append(span)

    def add_events(self, node, events: dict) -> None:
        self._record(node)
        self.gather_events[id(node)] = dict(events)

    # -- reporting ----------------------------------------------------------
    def annotation(self, node) -> str:
        """The EXPLAIN ANALYZE suffix for one node: ``(est≈N, actual=M,
        X.Xms)`` plus a misestimate flag past the q-error threshold.
        Nodes that never opened fall back to the static estimate text."""
        rec = self.records.get(id(node))
        if rec is None:
            estimate = format_estimate(node.est_rows, node.est_cost)
            return f"{estimate} (never executed)".strip()
        text = (
            f"(est≈{_fmt_rows(rec.est_rows)}, actual={rec.rows_out},"
            f" {rec.wall_s * 1000.0:.1f}ms)"
        )
        q = q_error(rec.est_rows, rec.rows_out)
        if q is not None and q > self.q_error_threshold:
            text += f" !! misestimate q≈{q:.1f}"
        return text

    def misestimates(self, plan) -> List[dict]:
        """Operator-level misestimate records for ``plan``: every executed
        node whose q-error exceeds the threshold."""
        out = []
        for node in plan.operators():
            rec = self.records.get(id(node))
            if rec is None:
                continue
            q = q_error(rec.est_rows, rec.rows_out)
            if q is not None and q > self.q_error_threshold:
                out.append(
                    {
                        "operator": rec.label,
                        "detail": rec.detail,
                        "est_rows": rec.est_rows,
                        "actual_rows": rec.rows_out,
                        "q_error": q,
                    }
                )
        return out

    def _span_lines(self, plan) -> List[str]:
        lines: List[str] = []
        for node in plan.operators():
            spans = self.fragment_spans.get(id(node))
            events = self.gather_events.get(id(node))
            if not spans and not events:
                continue
            lines.append(f"-- spans: {node.label} [{node.describe()}]")
            if events:
                mode = events.get("mode", "?")
                summary = f"   events: mode={mode}"
                if events.get("retries"):
                    summary += f" retries={events['retries']}"
                if events.get("degraded"):
                    summary += " degraded"
                breaker = events.get("breaker")
                if breaker:
                    summary += f" breaker={breaker}"
                lines.append(summary)
                for att in events.get("attempts", ()):
                    mark = "FAILED" if att.get("status") != "ok" else "ok"
                    line = (
                        f"   attempt {att.get('attempt')}"
                        f" [{att.get('mode', '?')}] {mark}"
                    )
                    if att.get("error"):
                        line += f" ({att['error']})"
                    lines.append(line)
            for span in spans or ():
                where = "worker" if span.get("in_worker") else "inline"
                lines.append(
                    f"   fragment {span.get('fragment')}"
                    f" attempt={span.get('attempt')} [{where}"
                    f" pid={span.get('pid')}] rows={span.get('rows')}"
                    f" work={span.get('work')}"
                    f" {span.get('wall_s', 0.0) * 1000.0:.1f}ms"
                )
        return lines

    def render(self, plan, headers: Optional[List[str]] = None) -> str:
        """The annotated EXPLAIN ANALYZE text: the ordinary ``explain()``
        tree with per-node actuals, then the cross-process span section."""
        parts = list(headers or [])
        parts.append(plan.explain(annotate=self.annotation))
        parts.extend(self._span_lines(plan))
        return "\n".join(parts)

    def summary(self, plan=None) -> dict:
        """A JSON-friendly digest: per-operator snapshots (plan order when
        a plan is given, discovery order otherwise), spans, events."""
        if plan is not None:
            ops = [
                self.records[id(node)].snapshot()
                for node in plan.operators()
                if id(node) in self.records
            ]
        else:
            ops = [rec.snapshot() for rec in self.records.values()]
        return {
            "trace_id": self.trace_id,
            "operators": ops,
            "fragment_spans": [
                span for spans in self.fragment_spans.values() for span in spans
            ],
            "gather_events": list(self.gather_events.values()),
        }
