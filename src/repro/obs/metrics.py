"""Unified metrics registry (PR 10).

One :class:`MetricsRegistry` per service gathers what was previously
scattered across ``QueryService.stats()``, ``ParallelExecutor.last_report``,
``Catalog`` counters, and the store's ``epoch_stats()``:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — a point-in-time value, either set directly or backed by
  a zero-argument callable sampled at snapshot time (used to mirror
  counters that live on other subsystems without double bookkeeping);
* :class:`Histogram` — fixed-bucket latency/duration distribution with
  cumulative bucket counts, total count and sum.

``snapshot()`` returns a stable (sorted-key) JSON-ready dict;
``render_prometheus()`` emits the text exposition format (``# HELP`` /
``# TYPE`` plus samples), so the registry can back either a debug
endpoint or a scrape target without further translation.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional, Sequence, Union

#: default histogram buckets — seconds, tuned for sub-second query work
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


def _sanitize(name: str) -> str:
    return "".join(c if (c.isalnum() or c == "_") else "_" for c in name)


class Counter:
    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def sample(self):
        return self.value


class Gauge:
    __slots__ = ("name", "help", "value", "fn")

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", fn: Optional[Callable[[], float]] = None
    ) -> None:
        self.name = name
        self.help = help
        self.value: float = 0
        self.fn = fn

    def set(self, value: float) -> None:
        self.value = value

    def sample(self):
        if self.fn is not None:
            try:
                return self.fn()
            except Exception:
                return None
        return self.value


class Histogram:
    __slots__ = ("name", "help", "buckets", "counts", "count", "sum")

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +inf bucket last
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    def sample(self) -> dict:
        cumulative = []
        running = 0
        for i, bound in enumerate(self.buckets):
            running += self.counts[i]
            cumulative.append({"le": bound, "count": running})
        cumulative.append({"le": "+Inf", "count": self.count})
        return {"buckets": cumulative, "count": self.count, "sum": self.sum}


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named collection of metrics with stable snapshot/export."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(name, lambda: Counter(name, help), Counter)

    def gauge(
        self, name: str, help: str = "", fn: Optional[Callable[[], float]] = None
    ) -> Gauge:
        metric = self._register(name, lambda: Gauge(name, help, fn), Gauge)
        if fn is not None:
            metric.fn = fn
        return metric

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._register(name, lambda: Histogram(name, help, buckets), Histogram)

    def _register(self, name: str, make: Callable[[], Metric], cls) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = self._metrics[name] = make()
        return metric

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def snapshot(self) -> dict:
        """Stable JSON-ready dict: ``{name: value}`` sorted by name;
        histograms expand to their bucket/count/sum dict."""
        return {
            name: self._metrics[name].sample() for name in sorted(self._metrics)
        }

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            pname = _sanitize(name)
            if metric.help:
                lines.append(f"# HELP {pname} {metric.help}")
            lines.append(f"# TYPE {pname} {metric.kind}")
            value = metric.sample()
            if isinstance(metric, Histogram):
                for bucket in value["buckets"]:
                    le = bucket["le"]
                    le_text = "+Inf" if le == "+Inf" else repr(float(le))
                    lines.append(
                        f'{pname}_bucket{{le="{le_text}"}} {bucket["count"]}'
                    )
                lines.append(f"{pname}_count {value['count']}")
                lines.append(f"{pname}_sum {value['sum']}")
            else:
                lines.append(f"{pname} {0 if value is None else value}")
        return "\n".join(lines) + "\n"
