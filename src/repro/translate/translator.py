"""OOSQL → ADL translation (Section 3 of the paper).

The paper's scheme is deliberately simple — "translation of OOSQL queries
into the algebra is done in a simple, almost one-to-one way":

    select e1 from x in e2 where e3   ≡   α[x : e1'](σ[x : e3'](e2'))

The translated expression *is* the naive nested-loop execution plan; all
cleverness is deferred to the rewrite phase.  Specifics:

* multi-variable from-clauses translate to nested map/select towers with a
  flatten per extra binding (leftmost variable outermost), preserving the
  tuple-at-a-time reading;
* name resolution: in-scope iteration variables shadow base tables;
* ``=`` / ``!=`` become *set* comparisons (``seteq``/``setneq``) when both
  operands are statically set-typed — that is what lets the Table 1 rewrites
  recognize them later; everything else maps one-to-one;
* ``exists x in e`` (no body) becomes ``∃x ∈ e • true``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.adl import ast as A
from repro.datamodel.errors import TranslationError, TypeCheckError
from repro.datamodel.schema import Schema
from repro.datamodel.types import SetType, Type
from repro.oosql import ast as Q
from repro.oosql.typecheck import OOSQLTypeChecker

_SETCMP_MAP = {
    "in": "in",
    "not in": "notin",
    "subset": "subset",
    "subseteq": "subseteq",
    "superset": "supset",
    "superseteq": "supseteq",
    "contains": "ni",
    "disjoint": "disjoint",
}

_SET_ALGEBRA = {"union": A.Union, "intersect": A.Intersect, "minus": A.Difference}


class Translator:
    """Translates type-correct OOSQL ASTs into ADL expressions.

    With a schema, the translator consults the OOSQL type checker to
    disambiguate ``=``/``!=`` on sets and to validate name resolution.
    Without one (algebra-level tests), ``=`` stays a scalar comparison —
    semantically identical at runtime, only less recognizable to the
    set-comparison rewrite rules.
    """

    def __init__(self, schema: Optional[Schema] = None) -> None:
        self.schema = schema
        self._checker = OOSQLTypeChecker(schema) if schema is not None else None

    # -- public API ----------------------------------------------------------
    def translate(self, node: Q.Node, env: Optional[Dict[str, Type]] = None) -> A.Expr:
        return self._tr(node, dict(env or {}))

    # -- helpers ----------------------------------------------------------------
    def _type_of(self, node: Q.Node, env: Dict[str, Type]) -> Optional[Type]:
        if self._checker is None:
            return None
        try:
            return self._checker.check(node, env)
        except TypeCheckError:
            return None

    def _element_type(self, node: Q.Node, env: Dict[str, Type], var: str) -> Type:
        if self._checker is None:
            from repro.datamodel.types import ANY

            return ANY
        t = self._checker.check(node, env)
        if isinstance(t, SetType):
            return t.element
        from repro.datamodel.types import ANY, AnyType

        if isinstance(t, AnyType):
            return ANY
        raise TranslationError(f"from-clause source of {var!r} is not a set: {t!r}")

    # -- the translation ------------------------------------------------------------
    def _tr(self, node: Q.Node, env: Dict[str, Type]) -> A.Expr:
        if isinstance(node, Q.Literal):
            return A.Literal(node.value)

        if isinstance(node, Q.Ident):
            if node.name in env:
                return A.Var(node.name)
            if self.schema is not None and self.schema.has_extent(node.name):
                return A.ExtentRef(node.name)
            if self.schema is None:
                # schema-less mode: free names are assumed to be base tables
                return A.ExtentRef(node.name)
            raise TranslationError(f"unknown name {node.name!r} (not a variable or base table)")

        if isinstance(node, Q.Param):
            return A.Param(node.name)

        if isinstance(node, Q.Path):
            return A.AttrAccess(self._tr(node.base, env), node.attr)

        if isinstance(node, Q.TupleCons):
            return A.TupleExpr(tuple((n, self._tr(e, env)) for n, e in node.fields))

        if isinstance(node, Q.SetCons):
            return A.SetExpr(tuple(self._tr(e, env) for e in node.elements))

        if isinstance(node, Q.Not):
            return A.Not(self._tr(node.operand, env))

        if isinstance(node, Q.Neg):
            return A.Neg(self._tr(node.operand, env))

        if isinstance(node, Q.Quantifier):
            source = self._tr(node.source, env)
            inner = dict(env)
            inner[node.var] = self._element_type(node.source, env, node.var)
            pred = self._tr(node.pred, inner) if node.pred is not None else A.Literal(True)
            cls = A.Exists if node.kind == "exists" else A.Forall
            return cls(node.var, source, pred)

        if isinstance(node, Q.Aggregate):
            return A.Aggregate(node.func, self._tr(node.source, env))

        if isinstance(node, Q.Flatten):
            return A.Flatten(self._tr(node.source, env))

        if isinstance(node, Q.BinOp):
            return self._tr_binop(node, env)

        if isinstance(node, Q.SFW):
            return self._tr_sfw(node, env)

        raise TranslationError(f"no translation rule for {type(node).__name__}")

    def _tr_binop(self, node: Q.BinOp, env: Dict[str, Type]) -> A.Expr:
        op = node.op
        left = self._tr(node.left, env)
        right = self._tr(node.right, env)

        if op == "and":
            return A.And(left, right)
        if op == "or":
            return A.Or(left, right)
        if op in ("+", "-", "*", "/", "mod"):
            return A.Arith(op, left, right)
        if op in ("<", "<=", ">", ">="):
            return A.Compare(op, left, right)
        if op in ("=", "!="):
            left_t = self._type_of(node.left, env)
            right_t = self._type_of(node.right, env)
            if isinstance(left_t, SetType) and isinstance(right_t, SetType):
                return A.SetCompare("seteq" if op == "=" else "setneq", left, right)
            return A.Compare(op, left, right)
        if op in _SETCMP_MAP:
            return A.SetCompare(_SETCMP_MAP[op], left, right)
        if op in _SET_ALGEBRA:
            return _SET_ALGEBRA[op](left, right)
        raise TranslationError(f"no translation rule for operator {op!r}")

    def _tr_sfw(self, node: Q.SFW, env: Dict[str, Type]) -> A.Expr:
        """``select F from x1 in E1, ..., xn in En where P``.

        Builds, inside-out:  the innermost level selects on the full
        predicate (every variable is in scope there) and maps the
        select-clause; each additional binding wraps the result in another
        map whose set-of-sets result is flattened.
        """
        inner_env = dict(env)
        sources = []
        for var, source_node in node.bindings:
            source = self._tr(source_node, inner_env)
            inner_env[var] = self._element_type(source_node, inner_env, var)
            sources.append((var, source))

        last_var, last_source = sources[-1]
        where = self._tr(node.where, inner_env) if node.where is not None else A.Literal(True)
        select = self._tr(node.select, inner_env)

        expr: A.Expr = A.Map(last_var, select, A.Select(last_var, where, last_source))
        for var, source in reversed(sources[:-1]):
            expr = A.Flatten(A.Map(var, expr, source))
        return expr


def translate(node: Q.Node, schema: Optional[Schema] = None) -> A.Expr:
    """One-shot translation of an OOSQL AST."""
    return Translator(schema).translate(node)


def compile_oosql(text: str, schema: Optional[Schema] = None) -> A.Expr:
    """Parse + (optionally) type check + translate OOSQL query text."""
    from repro.oosql.parser import parse

    node = parse(text)
    if schema is not None:
        OOSQLTypeChecker(schema).check(node)
    return translate(node, schema)
