"""Translation phase: OOSQL → ADL (Section 3)."""

from repro.translate.translator import Translator, compile_oosql, translate

__all__ = ["Translator", "compile_oosql", "translate"]
