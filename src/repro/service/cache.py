"""The parameterized plan cache.

PRs 1–3 made single-shot optimization good; this module makes it *cheap*
by amortizing it across executions, the way classic OODB servers treat
compiled query forms: optimization (rewrite, join ordering, physical
planning) is a per-**query-shape** cost, not a per-call cost.  A hit
skips those phases and goes straight to the compiled physical plan;
raw-text executions still parse once per call to compute the shape key
(prepared statements skip even that).

**Key.**  A cached plan is identified by ``(shape, catalog_version)``:

* *shape* — the canonical text of the parsed query (the OOSQL pretty
  printer emits re-parseable, whitespace/case/comment-normalized text), so
  two spellings of the same query share one plan and two *executions with
  different parameter bindings* share one plan by construction — ``$name``
  placeholders survive into the plan and bind at execution time.
  Queries that differ only in inline literal constants do **not** share a
  plan (the literal is part of the shape); prepared statements with
  parameters are the supported way to share.
* *catalog_version* — the monotonic counter
  :attr:`repro.storage.catalog.Catalog.version`, bumped by ``analyze()``,
  ``create_index()`` and the lazy stale-statistics refresh.  A lookup that
  finds an entry planned under an older version treats it as a miss and
  drops the entry (counted in :attr:`PlanCache.invalidations`), so a
  stale plan is never handed out after a catalog change.

**Concurrency.**  One lock around the LRU map; entries are immutable
after insertion (the plan tree is stateless — all mutable execution state
lives in the per-execution ``ExecRuntime``), so any number of concurrent
executions may share one entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.adl import ast as A
from repro.engine.plan import PlanNode


@dataclass(frozen=True)
class CachedPlan:
    """One compiled query shape: rewritten ADL + physical plan + metadata.

    Immutable and shareable across sessions and threads; parameter values
    never appear here (they bind per execution).
    """

    shape: str
    catalog_version: int
    expr: A.Expr                      # the chosen rewritten ADL form
    plan: PlanNode                    # the compiled physical plan
    param_names: Tuple[str, ...]      # every $name the statement declares
    option: str                       # which rewrite pipeline won
    explain: str                      # rendered physical plan, for tooling
    set_oriented: bool = True
    #: the plan contains a gather exchange: executions route through the
    #: service's parallel executor (when one is configured)
    parallel: bool = False
    #: visibility epoch of the store when the plan was priced (PR 7) —
    #: the epoch its statistics describe.  Executing the plan at a newer
    #: epoch is *allowed* (the catalog version gate already bounds how
    #: stale the statistics can be), but the service records the
    #: estimate-vs-actual delta for each such run instead of staying
    #: silent about it.
    epoch: Optional[int] = None
    #: the planner's output-cardinality estimate at compile time, the
    #: baseline the epoch-mismatch delta is computed against
    est_rows: Optional[float] = None


@dataclass
class CacheStats:
    """Counters the service reports per :meth:`QueryService.stats` call."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0            # version-mismatch evictions
    evictions: int = 0                # LRU-capacity evictions

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }


class PlanCache:
    """A bounded LRU of :class:`CachedPlan` keyed on query shape.

    ``maxsize=0`` disables caching entirely (every lookup is a miss and
    nothing is stored) — the benchmark's cold path.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 0:
            raise ValueError(f"cache maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CachedPlan]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, shape: str, catalog_version: int) -> Optional[CachedPlan]:
        """The cached plan for ``shape`` at ``catalog_version``, or ``None``.

        An entry planned under an *older* catalog version is stale: it is
        dropped on sight and the lookup reports a miss, so no caller can
        ever execute a plan the catalog has moved past.  An entry planned
        under a *newer* version (the caller's version snapshot is behind —
        a concurrent compile raced an ``analyze()``) is left in place: the
        versions are monotonic, so the entry is the fresher one, and the
        caller will re-read the version and hit it on retry.
        """
        with self._lock:
            entry = self._entries.get(shape)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry.catalog_version != catalog_version:
                if entry.catalog_version < catalog_version:
                    del self._entries[shape]
                    self.stats.invalidations += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(shape)
            self.stats.hits += 1
            return entry

    def peek(self, shape: str, catalog_version: int) -> Optional[CachedPlan]:
        """Like :meth:`get` but silent: no counters, no eviction, no LRU
        touch.  Used for the double-checked lookup inside the service's
        compile lock, where the outer :meth:`get` already accounted the
        miss — counting again would inflate the per-query statistics."""
        with self._lock:
            entry = self._entries.get(shape)
            if entry is not None and entry.catalog_version == catalog_version:
                return entry
            return None

    def put(self, entry: CachedPlan) -> None:
        if self.maxsize == 0:
            return
        with self._lock:
            existing = self._entries.get(entry.shape)
            if existing is not None and existing.catalog_version > entry.catalog_version:
                # a concurrent compile against a newer catalog already
                # landed; keep the newer plan
                return
            self._entries[entry.shape] = entry
            self._entries.move_to_end(entry.shape)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def shapes(self) -> Tuple[str, ...]:
        """The currently cached shapes, LRU-oldest first (for tooling)."""
        with self._lock:
            return tuple(self._entries)

    def entries(self) -> Tuple[CachedPlan, ...]:
        """A point-in-time snapshot of every cached entry, LRU-oldest
        first — the warm-start persistence path (PR 7) serializes from
        this without holding the lock during I/O."""
        with self._lock:
            return tuple(self._entries.values())
