"""Prepared statements: named, parameterized, compile-once query handles.

A prepared statement is the client-side face of the plan cache: preparing
parses + normalizes the text, compiles (or cache-hits) the plan, and
records the declared ``$name`` parameters; executing validates a binding
against those names and runs the cached physical plan with a fresh
per-execution runtime.

Binding validation is strict in both directions — a missing parameter
would raise :class:`~repro.datamodel.errors.UnboundParameterError` deep
inside an operator loop, and an *unexpected* one is almost always a typo
(``maxprice`` vs ``max_price``); both are rejected up front with the
full expected list in the message.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.datamodel.errors import ServiceError
from repro.datamodel.values import Value
from repro.oosql import ast as Q
from repro.oosql.parser import parse
from repro.oosql.pretty import pretty as oosql_pretty


def normalize_shape(text: str) -> Tuple[str, Tuple[str, ...]]:
    """Parse ``text`` and return ``(shape, param_names)``.

    The shape is the pretty-printed parse tree — re-parseable canonical
    text, insensitive to whitespace, comments, keyword case and redundant
    parentheses — and is the plan cache's key.  ``param_names`` are the
    distinct ``$name`` placeholders in source order.
    """
    node = parse(text)
    names = []
    for sub in node.walk():
        if isinstance(sub, Q.Param) and sub.name not in names:
            names.append(sub.name)
    return oosql_pretty(node), tuple(names)


def schema_fingerprint(schema) -> str:
    """A stable text fingerprint of a schema's class definitions.

    The plan-cache warm start (PR 7) stores this next to the persisted
    entries: a restored plan is only trusted when the schema it was
    compiled under is *textually identical* to the current one — class
    set, extent names, attribute names and attribute types all
    participate.  ``None`` schemas fingerprint to ``""``.
    """
    if schema is None:
        return ""
    classes = getattr(schema, "classes", None)
    if classes is not None:
        lines = []
        for cdef in sorted(classes, key=lambda c: c.name):
            attrs = ", ".join(
                f"{a}: {t!r}" for a, t in sorted(cdef.attributes.items())
            )
            lines.append(f"{cdef.name}[{cdef.extent}]({attrs})")
        return "\n".join(lines)
    # a bare extent-type catalog (datamodel.Catalog): no classes, just
    # extent name -> set type
    names = getattr(schema, "extent_names", None)
    if names is not None:
        return "\n".join(
            f"{name}: {schema.extent_type(name)!r}" for name in sorted(names)
        )
    return repr(schema)


def check_bindings(
    param_names: Iterable[str],
    params: Optional[Dict[str, Value]],
    what: str = "statement",
) -> Dict[str, Value]:
    """Validate a parameter binding against the declared names.

    Returns the binding as a plain dict (empty when the statement has no
    parameters and none were supplied).
    """
    declared = tuple(param_names)
    supplied = dict(params or {})
    missing = [n for n in declared if n not in supplied]
    unexpected = [n for n in supplied if n not in declared]
    if missing or unexpected:
        parts = []
        if missing:
            parts.append(f"missing {['$' + n for n in missing]}")
        if unexpected:
            parts.append(f"unexpected {['$' + n for n in unexpected]}")
        expected = ", ".join(f"${n}" for n in declared) or "(none)"
        raise ServiceError(
            f"{what} parameter mismatch: {'; '.join(parts)} "
            f"(declared parameters: {expected})"
        )
    return supplied


class PreparedStatement:
    """A handle to one compiled query shape, bound to a session.

    Obtained from :meth:`Session.prepare`; ``execute(**params)`` (or
    ``execute(params_dict)``) runs it.  The underlying plan lives in the
    service's shared cache — preparing the same text in two sessions
    compiles once.
    """

    def __init__(self, session, text: str, shape: str, param_names: Tuple[str, ...]) -> None:
        self._session = session
        self.text = text
        self.shape = shape
        self.param_names = param_names

    def execute(
        self,
        params: Optional[Dict[str, Value]] = None,
        *,
        timeout: Optional[float] = None,
        **kw: Value,
    ):
        """Run the statement; returns a :class:`~repro.service.service.QueryResult`.

        ``timeout`` (seconds) is the session-level query deadline — a
        query *parameter* named ``timeout`` must be passed via the
        ``params`` dict, not as a keyword.
        """
        if params is not None and kw:
            raise ServiceError("pass parameters as one dict or as keywords, not both")
        return self._session.execute(
            self, params if params is not None else kw, timeout=timeout
        )

    def execute_async(
        self,
        params: Optional[Dict[str, Value]] = None,
        *,
        timeout: Optional[float] = None,
        **kw: Value,
    ):
        """Like :meth:`execute` but returns a ``concurrent.futures.Future``."""
        if params is not None and kw:
            raise ServiceError("pass parameters as one dict or as keywords, not both")
        return self._session.execute_async(
            self, params if params is not None else kw, timeout=timeout
        )

    def __repr__(self) -> str:
        names = ", ".join(f"${n}" for n in self.param_names) or "no parameters"
        return f"PreparedStatement({self.shape!r}; {names})"
