"""The query service: one database, many sessions, amortized optimization.

The ROADMAP's north star is "heavy traffic from millions of users"; PRs
1–3 built a fast *single-shot* pipeline (parse → rewrite → DP join order →
cost-based physical plan → streaming execution) that pays the full
optimization tax on every call and supports exactly one caller.  This
module adds the missing layer:

* :class:`QueryService` owns a database + catalog and serves many logical
  :class:`Session`\\ s concurrently over one bounded worker pool;
* **prepared statements** (``$name`` placeholders, see
  :mod:`repro.service.prepared`) bind parameters at execution time, so
  repeated query *shapes* share one plan;
* the **parameterized plan cache** (:mod:`repro.service.cache`) keys on
  normalized shape + :attr:`Catalog.version`, so repeated queries skip
  the expensive rewrite/joinorder/planning phases and go straight to the
  compiled physical plan (raw-text executions still parse once per call
  to compute the shape key; prepared statements skip that too), and
  ``analyze()`` / ``create_index()`` invalidate every cached plan at the
  next lookup;
* **admission control**: at most ``max_in_flight`` queries execute
  concurrently and at most ``queue_depth`` more may wait; beyond that
  :class:`~repro.datamodel.errors.AdmissionError` pushes back instead of
  letting the queue grow without bound;
* **snapshot isolation** (PR 7): every execution pins the store's
  visibility epoch *at submission* and runs against an
  :class:`~repro.storage.store.EpochView` of that epoch, so a query
  reading several extents while writers interleave still observes one
  consistent multi-extent state — including inside shipped fragments,
  where the epoch rides the PR-5 contract next to the ``$param``
  bindings.  :meth:`Session.begin_snapshot` extends the same pin across
  several queries (repeatable reads at session granularity);
* **overload shedding** (PR 7): a queued query whose wait exceeds
  ``queue_wait_s`` is shed with
  :class:`~repro.datamodel.errors.OverloadError` (carrying a
  retry-after hint) instead of executing arbitrarily late, and
  ``session_max_in_flight`` caps any one session's outstanding
  queries so a single hot client cannot starve the rest.  Every shed,
  pin and reclaim event is counted in :meth:`QueryService.stats` — PR
  6's "every event is counted, never silent", applied to admission.

Isolation contract: *all mutable execution state is per-execution*.
Every query run gets a fresh :class:`~repro.engine.stats.Stats` and a
fresh :class:`~repro.engine.plan.ExecRuntime` (hence its own interpreter,
compiler, closure caches and parameter bindings); the shared pieces — the
database extents, catalog snapshots, cached :class:`CachedPlan` trees —
are immutable or internally locked.  That is what makes "8 concurrent
sessions return exactly the serial results" hold by construction; the
epoch pin extends it from "no shared mutable state" to "no observable
intermediate state" under concurrent writers.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.datamodel.errors import (
    AdmissionError,
    OverloadError,
    QueryTimeoutError,
    ServiceError,
)
from repro.datamodel.values import Value
from repro.engine.plan import ExecRuntime
from repro.engine.planner import Planner
from repro.engine.stats import Stats
from repro.obs import MetricsRegistry, MisestimateStore, SlowQueryLog, TraceRecorder
from repro.rewrite.strategy import Optimizer
from repro.service.cache import CachedPlan, PlanCache
from repro.service.prepared import (
    PreparedStatement,
    check_bindings,
    normalize_shape,
    schema_fingerprint,
)
from repro.storage.store import EpochView


@dataclass(frozen=True)
class QueryResult:
    """One execution's outcome: rows plus per-query accounting."""

    rows: frozenset
    wall_s: float
    stats: dict                      # Stats.snapshot() of this execution
    cache_hit: bool
    session_id: str
    shape: str
    option: str                      # winning rewrite pipeline
    #: fault-tolerance record of this execution (empty when nothing
    #: happened): retries, degraded, mode, breaker state — forwarded from
    #: the parallel executor's per-run events (PR 6)
    faults: dict = field(default_factory=dict)
    #: the visibility epoch every read of this execution resolved against
    #: (PR 7), or ``None`` when the store has no epochs / isolation is off
    epoch: Optional[int] = None
    #: EXPLAIN ANALYZE text (PR 10) — the plan tree annotated with
    #: per-operator est-vs-actual and cross-process fragment spans; only
    #: set when the query ran with ``analyze=True``
    analyze: Optional[str] = None
    #: JSON-friendly trace summary of an ``analyze=True`` run
    trace: Optional[dict] = None

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class SessionStats:
    """Per-session accounting, merged under the session's lock."""

    queries: int = 0
    cache_hits: int = 0
    errors: int = 0
    wall_s: float = 0.0
    work: Stats = field(default_factory=Stats)

    def snapshot(self) -> dict:
        return {
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "errors": self.errors,
            "wall_s": self.wall_s,
            "work": self.work.snapshot(),
        }


class Session:
    """A logical client connection: prepared statements + its own stats.

    Sessions are cheap (no thread, no transaction) and thread-compatible:
    each :meth:`execute` runs with per-execution state, and the session's
    own counters are lock-protected, so a session object may even be
    shared — though one session per logical client is the intended shape.
    """

    def __init__(self, service: "QueryService", session_id: str) -> None:
        self.service = service
        self.id = session_id
        self._lock = threading.Lock()
        self._stats = SessionStats()
        self._closed = False
        #: the epoch an open :meth:`begin_snapshot` pinned, else ``None``
        self._snapshot_epoch: Optional[int] = None

    # -- client API ----------------------------------------------------------
    def prepare(self, text: str) -> PreparedStatement:
        """Parse, normalize and compile (or cache-hit) ``text`` now."""
        self._check_open()
        shape, param_names = normalize_shape(text)
        # compile eagerly so prepare-time errors surface at prepare time
        self.service._lookup_or_compile(shape, param_names)
        return PreparedStatement(self, text, shape, param_names)

    def execute(
        self,
        query: Union[str, PreparedStatement],
        params: Optional[Dict[str, Value]] = None,
        *,
        timeout: Optional[float] = None,
        analyze: bool = False,
    ) -> QueryResult:
        """Run a query (text or prepared statement), waiting for the result.

        ``timeout`` (seconds) bounds the query's *total* latency — queue
        wait included — enforced within the engine's polling granularity;
        past it the execution raises
        :class:`~repro.datamodel.errors.QueryTimeoutError` and any worker
        pool it was driving is reclaimed.

        ``analyze=True`` (PR 10) runs the query traced: the result's
        ``analyze`` field carries the EXPLAIN ANALYZE text (per-operator
        est-vs-actual annotations plus cross-process fragment spans) and
        ``trace`` the JSON-friendly summary; operator misestimates past
        the service's q-error threshold land in
        ``QueryService.misestimates``.
        """
        return self.execute_async(
            query, params, timeout=timeout, analyze=analyze
        ).result()

    def execute_async(
        self,
        query: Union[str, PreparedStatement],
        params: Optional[Dict[str, Value]] = None,
        *,
        timeout: Optional[float] = None,
        analyze: bool = False,
    ) -> "Future[QueryResult]":
        """Submit a query to the service's worker pool.

        Raises :class:`AdmissionError` immediately when the service is at
        its in-flight + queue-depth limit.  The deadline implied by
        ``timeout`` starts *now*, at submission — a query that sits in the
        queue spends its budget there too.
        """
        self._check_open()
        if isinstance(query, PreparedStatement):
            shape, param_names = query.shape, query.param_names
        else:
            shape, param_names = normalize_shape(query)
        bindings = check_bindings(param_names, params, what=f"query {shape!r}")
        if timeout is not None and timeout < 0:
            raise ServiceError(f"timeout must be >= 0 seconds, got {timeout}")
        deadline = time.monotonic() + timeout if timeout is not None else None
        return self.service._submit(
            self, shape, param_names, bindings, deadline, analyze=analyze
        )

    # -- snapshot isolation (PR 7) ------------------------------------------
    def begin_snapshot(self) -> int:
        """Pin the store's current visibility epoch for this session.

        Until :meth:`end_snapshot`, every query this session submits
        executes against this one epoch — repeatable reads across
        queries, not just within one.  Returns the pinned epoch.
        Requires an epoch-capable store (both built-in stores are).
        """
        self._check_open()
        with self._lock:
            if self._snapshot_epoch is not None:
                raise ServiceError(
                    f"session {self.id!r} already holds a snapshot at epoch "
                    f"{self._snapshot_epoch}"
                )
            self._snapshot_epoch = self.service._pin_epoch()
            return self._snapshot_epoch

    def end_snapshot(self) -> None:
        """Release the session's snapshot pin; later queries pin the
        then-current epoch per execution again."""
        with self._lock:
            epoch, self._snapshot_epoch = self._snapshot_epoch, None
        if epoch is None:
            raise ServiceError(f"session {self.id!r} holds no snapshot")
        self.service._unpin_epoch(epoch)

    @contextmanager
    def snapshot(self):
        """``with session.snapshot() as epoch:`` — scoped repeatable reads."""
        epoch = self.begin_snapshot()
        try:
            yield epoch
        finally:
            self.end_snapshot()

    @property
    def stats(self) -> dict:
        with self._lock:
            return self._stats.snapshot()

    def close(self) -> None:
        self._closed = True
        with self._lock:
            epoch, self._snapshot_epoch = self._snapshot_epoch, None
        if epoch is not None:
            self.service._unpin_epoch(epoch)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals -----------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError(f"session {self.id!r} is closed")

    def _record(self, result: Optional[QueryResult], work: Stats) -> None:
        with self._lock:
            self._stats.queries += 1
            if result is None:
                self._stats.errors += 1
                return
            self._stats.cache_hits += int(result.cache_hit)
            self._stats.wall_s += result.wall_s
            self._stats.work = self._stats.work + work


class QueryService:
    """Owns one database + catalog; serves sessions through a worker pool.

    Parameters
    ----------
    db:
        Any store satisfying the interpreter protocol (``extent``/``deref``).
    schema:
        Optional OOSQL schema (or flat ADL type catalog) used for type
        checking, translation and the rewrite strategy.
    catalog:
        Optional :class:`~repro.storage.catalog.Catalog`; enables
        cost-ranked rewriting, DP join reordering, cost-based physical
        planning and index access paths.  Its monotonic ``version`` is
        part of every plan-cache key.
    max_workers / max_in_flight:
        Worker threads in the pool / concurrently executing queries
        (default: equal; ``max_in_flight`` may be lower but never higher —
        the pool could not honor it).  ``queue_depth`` more submissions
        may wait; beyond that :class:`AdmissionError` is raised
        (back-pressure).
    cache_size:
        Plan-cache capacity in distinct query shapes; ``0`` disables
        caching (every call re-optimizes — the benchmark's cold path).
    parallel_workers / parallel_mode:
        ``parallel_workers >= 2`` enables partition-parallel execution:
        the planner enumerates partitioned join candidates (the cost
        model decides per query shape) and plans that contain a gather
        exchange route through a :class:`repro.shard.ParallelExecutor`
        — a forked ``multiprocessing`` pool (``parallel_mode="process"``,
        the default) or the in-process fragment loop
        (``parallel_mode="inline"``).  The pool's worker snapshot is
        retired and re-forked whenever the catalog version moves, the
        same trigger that retires cached plans.
    fault_plan / retry_policy:
        PR-6 fault tolerance knobs forwarded to the parallel executor: a
        deterministic :class:`~repro.faults.FaultPlan` to inject (tests;
        also settable via ``$REPRO_FAULT_PLAN``) and the
        :class:`~repro.faults.RetryPolicy` governing transient-failure
        retries.  ``None`` means the executor defaults.
    snapshot_isolation:
        When the store supports visibility epochs (PR 7), pin each
        query's epoch at submission and execute every read — serial
        operators, statistics, shipped fragments — against that one
        epoch.  ``False`` restores the pre-PR-7 live-head reads.  A
        no-op (with :meth:`Session.begin_snapshot` raising) on stores
        without epochs.
    queue_wait_s:
        Overload shed deadline (PR 7): a submission that waited longer
        than this in the admission queue is shed with
        :class:`~repro.datamodel.errors.OverloadError` (retry-after =
        this value) instead of executing arbitrarily late.  ``None``
        disables the shed (queued work runs whenever a worker frees up,
        bounded only by ``queue_depth`` and per-query timeouts).
    session_max_in_flight:
        Per-session fairness cap (PR 7): one session may have at most
        this many submissions outstanding (queued or executing); beyond
        it :class:`OverloadError` is raised without consuming a slot, so
        a single hot client cannot occupy the whole queue.  ``None``
        disables the cap.
    cache_persist_path:
        Plan-cache warm start (PR 7): :meth:`close` persists the cached
        shapes (as canonical re-parseable plan text) to this JSON file,
        and construction restores them — each entry dropped unless the
        catalog version *and* the schema fingerprint still match.
    batch_size:
        Vectorized batch execution (PR 8): rows per columnar chunk for
        cached-plan execution.  **On by default** — every no-deadline run
        executes batch-at-a-time through ``iterate_batches``, with
        uncovered expression forms falling back to the tuple-wise
        compiled closure per batch element (results are oracle-equal by
        construction).  Deadline-bound runs always stay tuple-mode: the
        row-granular deadline polls are the enforcement mechanism.
        ``None`` disables batching entirely (pre-PR-8 behaviour).
        Adoption is observable, never silent: ``QueryResult.stats``
        carries ``batches_emitted`` / ``vector_fallbacks`` per run and
        :meth:`stats` aggregates them service-wide under ``"batch"``.
    """

    def __init__(
        self,
        db,
        schema=None,
        catalog=None,
        *,
        max_workers: int = 4,
        max_in_flight: Optional[int] = None,
        queue_depth: int = 16,
        cache_size: int = 64,
        reorder: bool = True,
        bushy: bool = False,
        compile_exprs: bool = True,
        parallel_workers: int = 0,
        parallel_mode: str = "process",
        fault_plan=None,
        retry_policy=None,
        snapshot_isolation: bool = True,
        queue_wait_s: Optional[float] = None,
        session_max_in_flight: Optional[int] = None,
        cache_persist_path: Optional[str] = None,
        batch_size: Optional[int] = 256,
        q_error_threshold: float = 4.0,
        slow_query_s: Optional[float] = None,
        misestimate_capacity: int = 8,
    ) -> None:
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        self.db = db
        self.schema = schema
        self.catalog = catalog if catalog is not None else getattr(db, "catalog", None)
        self.cache = PlanCache(cache_size)
        self.reorder = reorder
        self.bushy = bushy
        self.compile_exprs = compile_exprs
        self.max_in_flight = max_in_flight if max_in_flight is not None else max_workers
        if self.max_in_flight < 1:
            raise ServiceError(f"max_in_flight must be >= 1, got {self.max_in_flight}")
        if self.max_in_flight > max_workers:
            # the pool can never run more than max_workers at once; a larger
            # in-flight limit would just be a hidden extra queue and make
            # every admission number a lie
            raise ServiceError(
                f"max_in_flight ({self.max_in_flight}) cannot exceed "
                f"max_workers ({max_workers})"
            )
        if queue_depth < 0:
            raise ServiceError(f"queue_depth must be >= 0, got {queue_depth}")
        self.queue_depth = queue_depth
        self._pool = ThreadPoolExecutor(
            max_workers=min(max_workers, self.max_in_flight),
            thread_name_prefix="repro-query",
        )
        # admission: in-flight executions + queued submissions together may
        # not exceed max_in_flight + queue_depth
        self._slots = threading.Semaphore(self.max_in_flight + self.queue_depth)
        # compilation serializes *per shape* (no duplicate compiles of one
        # shape; distinct shapes compile concurrently).  Entries are
        # refcounted [lock, waiters] pairs so the registry stays bounded
        # by the number of shapes currently compiling.
        self._compile_locks: Dict[str, list] = {}
        self._compile_locks_guard = threading.Lock()
        self.parallel_workers = parallel_workers
        self.parallel_mode = parallel_mode
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self._parallel = None
        self._parallel_guard = threading.Lock()
        self._state_lock = threading.Lock()
        self._session_ids = itertools.count(1)
        self._closed = False
        self.executed = 0
        self.rejected = 0
        self.compilations = 0
        self._in_flight = 0
        self.peak_in_flight = 0
        # -- fault-tolerance accounting (PR 6), under _state_lock
        self.timeouts = 0
        self.retries = 0
        self.degraded_runs = 0
        # -- snapshot isolation + overload shedding (PR 7)
        if queue_wait_s is not None and queue_wait_s < 0:
            raise ServiceError(f"queue_wait_s must be >= 0, got {queue_wait_s}")
        if session_max_in_flight is not None and session_max_in_flight < 1:
            raise ServiceError(
                f"session_max_in_flight must be >= 1, got {session_max_in_flight}"
            )
        self.snapshot_isolation = snapshot_isolation
        self.queue_wait_s = queue_wait_s
        self.session_max_in_flight = session_max_in_flight
        self.cache_persist_path = cache_persist_path
        #: the store supports the epoch protocol *and* isolation is on
        self._epochs_enabled = snapshot_isolation and hasattr(db, "pin_epoch")
        # counters below are under _state_lock
        self.pins_taken = 0
        self.shed_queue_wait = 0
        self.shed_fairness = 0
        self.epoch_mismatch_runs = 0
        # -- observability (PR 10), see _wire_metrics
        #: bounded per-shape estimate-vs-actual misses — operator-level
        #: q-error records from traced runs *and* the PR-7 epoch-mismatch
        #: records, migrated here as ``kind="epoch-mismatch"`` (the
        #: ``stats()["epoch_mismatches"]`` key stays as a view)
        self.misestimates = MisestimateStore(per_shape=misestimate_capacity)
        self.q_error_threshold = q_error_threshold
        self.slow_log = SlowQueryLog(slow_query_s)
        self.metrics = MetricsRegistry()
        self.analyzed_runs = 0
        #: session id → outstanding submissions (queued or executing)
        self._session_outstanding: Dict[str, int] = {}
        self.warm_restored = 0
        self.warm_dropped = 0
        # -- vectorized batch execution (PR 8), under _state_lock
        if batch_size is not None and batch_size < 1:
            raise ServiceError(f"batch_size must be >= 1 or None, got {batch_size}")
        self.batch_size = batch_size
        self.batch_runs = 0
        self.batches_emitted = 0
        self.vector_fallbacks = 0
        self._wire_metrics()
        if cache_persist_path:
            self._restore_plan_cache(cache_persist_path)

    def _wire_metrics(self) -> None:
        """Register the unified metrics surface (PR 10).

        Histograms are owned by the registry and observed by ``_run``;
        everything that already has an authoritative counter elsewhere
        (service state, plan cache, catalog, store epochs, the parallel
        executor) is exposed as a callable-backed gauge sampled at
        snapshot time — one surface, no double bookkeeping."""
        m = self.metrics
        self._latency_hist = m.histogram(
            "repro_query_latency_seconds", "query execution wall time"
        )
        self._queue_wait_hist = m.histogram(
            "repro_queue_wait_seconds", "submission-to-execution queue wait"
        )
        for name, help_text, fn in (
            ("repro_queries_executed", "completed executions", lambda: self.executed),
            ("repro_queries_rejected", "admission rejections", lambda: self.rejected),
            ("repro_queries_in_flight", "executions running now", lambda: self._in_flight),
            ("repro_compilations", "plan compilations", lambda: self.compilations),
            ("repro_timeouts", "deadline expiries", lambda: self.timeouts),
            ("repro_retries", "fragment batch retries", lambda: self.retries),
            ("repro_degraded_runs", "runs degraded to inline", lambda: self.degraded_runs),
            ("repro_shed_queue_wait", "queries shed on queue wait", lambda: self.shed_queue_wait),
            ("repro_shed_fairness", "queries shed on session cap", lambda: self.shed_fairness),
            ("repro_pins_taken", "epoch pins taken", lambda: self.pins_taken),
            ("repro_cache_hits", "plan cache hits", lambda: self.cache.stats.hits),
            ("repro_cache_misses", "plan cache misses", lambda: self.cache.stats.misses),
            ("repro_cached_shapes", "shapes in the plan cache", lambda: len(self.cache)),
            ("repro_catalog_version", "catalog version", self._catalog_version),
            ("repro_batch_runs", "batch-mode executions", lambda: self.batch_runs),
            ("repro_analyzed_runs", "EXPLAIN ANALYZE executions", lambda: self.analyzed_runs),
            ("repro_misestimates", "recorded estimate misses", lambda: self.misestimates.recorded),
            ("repro_epoch_mismatch_runs", "plan/execution epoch mismatches", lambda: self.epoch_mismatch_runs),
            ("repro_slow_queries", "slow-query log entries", lambda: self.slow_log.logged),
        ):
            m.gauge(name, help_text, fn)
        m.gauge(
            "repro_cache_hit_ratio",
            "plan cache hit ratio",
            lambda: (
                self.cache.stats.hits / total
                if (total := self.cache.stats.hits + self.cache.stats.misses)
                else 0.0
            ),
        )
        if self.catalog is not None:
            m.gauge(
                "repro_catalog_stat_refreshes",
                "catalog statistics refreshes",
                lambda: self.catalog.stat_refreshes,
            )
        if hasattr(self.db, "epoch_stats"):
            for key in (
                "epoch",
                "pinned",
                "pin_events",
                "preserved_snapshots",
                "reclaimed_snapshots",
                "live_snapshots",
            ):
                m.gauge(
                    f"repro_epochs_{key}",
                    f"store epoch_stats {key}",
                    lambda k=key: self.db.epoch_stats().get(k),
                )
        for attr in (
            "runs",
            "pool_rebuilds",
            "retries",
            "degraded_runs",
            "timeouts",
            "pool_deaths",
            "transient_faults",
        ):
            m.gauge(
                f"repro_parallel_{attr}",
                f"parallel executor {attr}",
                lambda a=attr: (
                    getattr(self._parallel, a) if self._parallel is not None else 0
                ),
            )

    def metrics_snapshot(self) -> dict:
        """The registry's stable JSON-ready snapshot."""
        return self.metrics.snapshot()

    def metrics_text(self) -> str:
        """Prometheus-style text exposition of every registered metric."""
        return self.metrics.render_prometheus()

    # -- sessions ------------------------------------------------------------
    def session(self) -> Session:
        """Open a new logical session."""
        if self._closed:
            raise ServiceError("service is closed")
        return Session(self, f"session-{next(self._session_ids)}")

    # -- one-shot convenience --------------------------------------------------
    def execute(
        self,
        text: str,
        params: Optional[Dict[str, Value]] = None,
        *,
        timeout: Optional[float] = None,
        analyze: bool = False,
    ) -> QueryResult:
        """Run one query on a throwaway session (scripts, tests)."""
        with self.session() as session:
            return session.execute(text, params, timeout=timeout, analyze=analyze)

    def explain(self, text: str) -> str:
        """The physical plan that executions of ``text`` will run.

        Read-only introspection: uses counter-free cache peeks so polling
        ``explain`` never skews the hit/miss statistics or the LRU order
        real queries see (it still compiles — and caches — on a miss, so
        the answer is always the plan executions will actually run).
        """
        shape, param_names = normalize_shape(text)
        entry = self.cache.peek(shape, self._catalog_version())
        if entry is None:
            with self._shape_lock(shape):
                entry = self.cache.peek(shape, self._catalog_version())
                if entry is None:
                    entry = self._compile(shape, param_names)
                    self.cache.put(entry)
        return entry.explain

    # -- snapshot pinning (PR 7) ----------------------------------------------
    def _pin_epoch(self, epoch: Optional[int] = None) -> int:
        """Pin ``epoch`` (default current) on the store; counted."""
        if not self._epochs_enabled:
            raise ServiceError(
                "snapshot isolation is unavailable: the store has no "
                "visibility epochs or snapshot_isolation=False"
            )
        pinned = self.db.pin_epoch(epoch)
        with self._state_lock:
            self.pins_taken += 1
        return pinned

    def _unpin_epoch(self, epoch: int) -> None:
        self.db.unpin_epoch(epoch)

    # -- plan cache ------------------------------------------------------------
    def _catalog_version(self) -> int:
        return self.catalog.version if self.catalog is not None else 0

    def _catalog_fingerprint(self) -> str:
        return self.catalog.fingerprint() if self.catalog is not None else ""

    @contextmanager
    def _shape_lock(self, shape: str):
        """The compile lock for one query shape.

        Per-shape locking keeps the no-duplicate-compile guarantee (two
        concurrent first executions of one shape compile once) without
        serializing *distinct* shapes — the PR-4 known simplification,
        fixed.  Entries are refcounted and dropped when the last waiter
        leaves, so the registry never outgrows the set of shapes
        currently compiling.
        """
        with self._compile_locks_guard:
            entry = self._compile_locks.get(shape)
            if entry is None:
                entry = self._compile_locks[shape] = [threading.Lock(), 0]
            entry[1] += 1
        entry[0].acquire()
        try:
            yield
        finally:
            entry[0].release()
            with self._compile_locks_guard:
                entry[1] -= 1
                if entry[1] == 0:
                    self._compile_locks.pop(shape, None)

    def _lookup_or_compile(
        self, shape: str, param_names: Tuple[str, ...]
    ) -> Tuple[CachedPlan, bool]:
        """Return ``(entry, was_hit)`` — ``was_hit`` is False iff this call
        had to compile (or wait for a concurrent compile of) the shape."""
        entry = self.cache.get(shape, self._catalog_version())
        if entry is not None:
            return entry, True
        # one compile at a time *per shape*: concurrent first executions of
        # the same shape would otherwise duplicate the (expensive)
        # optimize+plan work; distinct shapes compile concurrently under
        # their own locks
        with self._shape_lock(shape):
            # peek, not get: the lookup above already accounted the miss
            entry = self.cache.peek(shape, self._catalog_version())
            if entry is not None:
                # a concurrent compile landed while we waited for the lock;
                # this call still paid (part of) the miss
                return entry, False
            entry = self._compile(shape, param_names)
            self.cache.put(entry)
            return entry, False

    def _compile(self, shape: str, param_names: Tuple[str, ...]) -> CachedPlan:
        """The full PR 1–3 pipeline, run once per shape per catalog version."""
        from repro.translate.translator import compile_oosql

        # snapshot the version *before* optimizing: a bump landing during
        # compilation (concurrent create_index/analyze, or planning's own
        # lazy statistics refresh) makes this entry stale on arrival — the
        # next lookup sees the newer version, drops it and recompiles once
        # against the settled catalog.  Tagging with the post-plan version
        # instead could pin a pre-DDL plan under the post-DDL version
        # forever.
        version = self._catalog_version()
        adl = compile_oosql(shape, self.schema)
        optimizer = Optimizer(
            self.schema,
            catalog=self.catalog,
            parallel_workers=self.parallel_workers,
        )
        chosen = optimizer.optimize(adl)
        planner = Planner(
            self.catalog,
            reorder=self.reorder,
            bushy=self.bushy,
            parallel_workers=self.parallel_workers,
        )
        plan = planner.plan(chosen.expr)
        from repro.shard.nodes import Exchange

        parallel = any(isinstance(op, Exchange) for op in plan.operators())
        with self._state_lock:
            self.compilations += 1
        return CachedPlan(
            shape=shape,
            catalog_version=version,
            expr=chosen.expr,
            plan=plan,
            param_names=param_names,
            option=chosen.option,
            explain=plan.explain(),
            set_oriented=chosen.set_oriented,
            parallel=parallel,
            epoch=getattr(self.db, "epoch", None),
            est_rows=getattr(plan, "est_rows", None),
        )

    # -- parallel execution -----------------------------------------------------
    def _parallel_handle(self):
        """The service's :class:`~repro.shard.ParallelExecutor`, created
        lazily once.  Staleness needs no handling here: the executor
        itself re-forks its pool whenever the catalog version or any read
        extent's identity moves (and keeping one executor keeps its
        ``runs``/``pool_rebuilds`` counters meaningful across bumps)."""
        if self.parallel_workers < 2:
            return None
        from repro.shard.executor import ParallelExecutor

        with self._parallel_guard:
            if self._closed:
                # a query racing close(): no new executor — the caller
                # falls back to inline fragment execution
                return None
            if self._parallel is None:
                kwargs = {}
                if self.fault_plan is not None:
                    kwargs["fault_plan"] = self.fault_plan
                if self.retry_policy is not None:
                    kwargs["retry_policy"] = self.retry_policy
                self._parallel = ParallelExecutor(
                    self.db,
                    self.catalog,
                    workers=self.parallel_workers,
                    mode=self.parallel_mode,
                    **kwargs,
                )
            return self._parallel

    # -- execution -------------------------------------------------------------
    def _submit(
        self,
        session: Session,
        shape: str,
        param_names: Tuple[str, ...],
        bindings: Dict[str, Value],
        deadline: Optional[float] = None,
        analyze: bool = False,
    ) -> "Future[QueryResult]":
        if self._closed:
            raise ServiceError("service is closed")
        retry_after = self.queue_wait_s if self.queue_wait_s is not None else 0.05
        # per-session fairness cap first: a capped session is shed without
        # consuming a global slot, so it cannot crowd out other sessions
        if self.session_max_in_flight is not None:
            with self._state_lock:
                outstanding = self._session_outstanding.get(session.id, 0)
                if outstanding >= self.session_max_in_flight:
                    self.shed_fairness += 1
                    self.rejected += 1
                    raise OverloadError(
                        f"session {session.id!r} already has {outstanding} "
                        f"queries outstanding (cap {self.session_max_in_flight})",
                        retry_after_s=retry_after,
                    )
        if not self._slots.acquire(blocking=False):
            with self._state_lock:
                self.rejected += 1
            raise AdmissionError(
                f"service saturated: {self.max_in_flight} in flight plus "
                f"{self.queue_depth} queued",
                retry_after_s=retry_after,
            )
        # pin the query's visibility epoch *now*, at submission: the state
        # a client observes is the state that existed when it asked, no
        # matter how long the query queues (a session snapshot re-pins its
        # own epoch so the pin survives queue + execution independently)
        pinned: Optional[int] = None
        incremented = False
        submitted_at = time.monotonic()
        try:
            if self._epochs_enabled:
                pinned = self._pin_epoch(session._snapshot_epoch)
            with self._state_lock:
                self._session_outstanding[session.id] = (
                    self._session_outstanding.get(session.id, 0) + 1
                )
            incremented = True
            future = self._pool.submit(
                self._run,
                session,
                shape,
                param_names,
                bindings,
                deadline,
                pinned,
                submitted_at,
                analyze,
            )
        except BaseException:
            self._slots.release()
            if incremented:
                with self._state_lock:
                    count = self._session_outstanding.get(session.id, 0) - 1
                    if count > 0:
                        self._session_outstanding[session.id] = count
                    else:
                        self._session_outstanding.pop(session.id, None)
            if pinned is not None:
                self._unpin_epoch(pinned)
            raise

        def _release(_f) -> None:
            self._slots.release()
            with self._state_lock:
                count = self._session_outstanding.get(session.id, 0) - 1
                if count > 0:
                    self._session_outstanding[session.id] = count
                else:
                    self._session_outstanding.pop(session.id, None)

        future.add_done_callback(_release)
        return future

    def _run(
        self,
        session: Session,
        shape: str,
        param_names: Tuple[str, ...],
        bindings: Dict[str, Value],
        deadline: Optional[float] = None,
        pinned: Optional[int] = None,
        submitted_at: Optional[float] = None,
        analyze: bool = False,
    ) -> QueryResult:
        with self._state_lock:
            self._in_flight += 1
            self.peak_in_flight = max(self.peak_in_flight, self._in_flight)
        work = Stats()
        try:
            now = time.monotonic()
            if (
                self.queue_wait_s is not None
                and submitted_at is not None
                and now - submitted_at > self.queue_wait_s
            ):
                # overload shed (PR 7): the queue wait alone blew the
                # shed deadline — executing now would serve a client that
                # has likely given up, at the expense of fresher work
                with self._state_lock:
                    self.shed_queue_wait += 1
                raise OverloadError(
                    f"query shed after waiting {now - submitted_at:.3f}s in the "
                    f"admission queue (queue_wait_s={self.queue_wait_s})",
                    retry_after_s=self.queue_wait_s,
                )
            if deadline is not None and now >= deadline:
                # the budget was spent waiting in the queue
                raise QueryTimeoutError("query deadline expired before execution")
            queue_wait = now - submitted_at if submitted_at is not None else 0.0
            entry, cache_hit = self._lookup_or_compile(shape, param_names)
            recorder = (
                TraceRecorder(q_error_threshold=self.q_error_threshold)
                if analyze
                else None
            )
            # every read of this execution resolves through the pinned
            # epoch's view (PR 7) — the runtime picks the epoch up and
            # threads it into every shipped fragment
            exec_db = EpochView(self.db, pinned) if pinned is not None else self.db
            # all mutable execution state is local to this runtime: stats,
            # interpreter, compiled closures, parameter bindings — and the
            # deadline the engine's hot loops poll
            runtime = ExecRuntime(
                exec_db,
                work,
                compile_exprs=self.compile_exprs,
                catalog=self.catalog,
                params=bindings,
                parallel=self._parallel_handle() if entry.parallel else None,
                deadline=deadline,
                # batch mode only on the no-deadline path: deadline-bound
                # runs need the row-granular polls below to stay honest
                batch_size=self.batch_size if deadline is None else None,
                trace=recorder,
            )
            start = time.perf_counter()
            if deadline is None:
                rows = entry.plan.execute(runtime)
            else:
                # output-granularity enforcement on top of the operator
                # hot-loop polls: a plan stalling between emitted rows is
                # still caught at every row it does emit
                out = []
                for n, row in enumerate(entry.plan.stream(runtime)):
                    if not (n & 63):
                        runtime.check_deadline()
                    out.append(row)
                runtime.check_deadline()
                rows = frozenset(out)
            wall = time.perf_counter() - start
            faults = dict(runtime.fault_events)
            if faults:
                with self._state_lock:
                    self.retries += int(faults.get("retries", 0) or 0)
                    self.degraded_runs += int(bool(faults.get("degraded")))
            if (
                pinned is not None
                and entry.epoch is not None
                and entry.epoch != pinned
            ):
                # the plan was priced at a different epoch than it ran at
                # (allowed — the catalog-version gate bounds the staleness)
                # but never silently: record the estimate-vs-actual delta
                # on the misestimate store (PR 10 — one feedback surface)
                with self._state_lock:
                    self.epoch_mismatch_runs += 1
                    self.misestimates.record(
                        shape,
                        kind="epoch-mismatch",
                        planned_epoch=entry.epoch,
                        executed_epoch=pinned,
                        est_rows=entry.est_rows,
                        actual_rows=len(rows),
                    )
            analyze_text = None
            trace_summary = None
            tracer = runtime.trace  # the analyze recorder, or REPRO_TRACE's
            if tracer is not None:
                misses = tracer.misestimates(entry.plan)
                with self._state_lock:
                    if analyze:
                        self.analyzed_runs += 1
                    for miss in misses:
                        self.misestimates.record(shape, kind="operator", **miss)
                if analyze:
                    analyze_text = tracer.render(entry.plan)
                    trace_summary = tracer.summary(entry.plan)
            self._latency_hist.observe(wall)
            self._queue_wait_hist.observe(queue_wait)
            self.slow_log.maybe_log(
                shape=shape,
                wall_s=wall,
                plan_text=entry.explain,
                trace_summary=trace_summary,
                session_id=session.id,
            )
            result = QueryResult(
                rows=rows,
                wall_s=wall,
                stats=work.snapshot(),
                cache_hit=cache_hit,
                session_id=session.id,
                shape=shape,
                option=entry.option,
                faults=faults,
                epoch=pinned,
                analyze=analyze_text,
                trace=trace_summary,
            )
            session._record(result, work)
            with self._state_lock:
                self.executed += 1
                if runtime.batch_size:
                    self.batch_runs += 1
                    self.batches_emitted += work.batches_emitted
                    self.vector_fallbacks += work.vector_fallbacks
            return result
        except BaseException as exc:
            if isinstance(exc, QueryTimeoutError):
                with self._state_lock:
                    self.timeouts += 1
            session._record(None, work)
            raise
        finally:
            if pinned is not None:
                self._unpin_epoch(pinned)
            with self._state_lock:
                self._in_flight -= 1

    # -- reporting / lifecycle ---------------------------------------------------
    def stats(self) -> dict:
        with self._state_lock:
            out = {
                "executed": self.executed,
                "rejected": self.rejected,
                "compilations": self.compilations,
                "in_flight": self._in_flight,
                "peak_in_flight": self.peak_in_flight,
                "catalog_version": self._catalog_version(),
                "cache": self.cache.stats.snapshot(),
                "cached_shapes": len(self.cache),
                "timeouts": self.timeouts,
                "retries": self.retries,
                "degraded_runs": self.degraded_runs,
                "pins_taken": self.pins_taken,
                "shed_queue_wait": self.shed_queue_wait,
                "shed_fairness": self.shed_fairness,
                "epoch_mismatch_runs": self.epoch_mismatch_runs,
                # compatibility view (PR 10): the records live on the
                # misestimate store now, rendered with their PR-7 keys
                "epoch_mismatches": self.misestimates.epoch_mismatch_view(),
                "misestimates": self.misestimates.recorded,
                "analyzed_runs": self.analyzed_runs,
                "slow_queries": self.slow_log.logged,
                "warm_restored": self.warm_restored,
                "warm_dropped": self.warm_dropped,
                "batch": {
                    "batch_size": self.batch_size,
                    "batch_runs": self.batch_runs,
                    "batches_emitted": self.batches_emitted,
                    "vector_fallbacks": self.vector_fallbacks,
                },
            }
        if hasattr(self.db, "epoch_stats"):
            out["epochs"] = self.db.epoch_stats()
        with self._parallel_guard:
            if self._parallel is not None:
                out["parallel"] = {
                    "workers": self._parallel.workers,
                    "mode": self._parallel.mode,
                    "runs": self._parallel.runs,
                    "pool_rebuilds": self._parallel.pool_rebuilds,
                    "retries": self._parallel.retries,
                    "degraded_runs": self._parallel.degraded_runs,
                    "timeouts": self._parallel.timeouts,
                    "pool_deaths": self._parallel.pool_deaths,
                    "transient_faults": self._parallel.transient_faults,
                    "extent_lookup_failures": self._parallel.extent_lookup_failures,
                    "breaker": self._parallel.breaker.snapshot(),
                }
        return out

    # -- plan-cache warm start (PR 7) ------------------------------------------
    def _persist_plan_cache(self, path: str) -> None:
        """Serialize the cached shapes to ``path`` as canonical plan text.

        What is persisted is the *chosen rewritten ADL* per shape (the
        same re-parseable pretty text the fragment contract ships), plus
        the schema fingerprint and a *content-based* catalog fingerprint
        it was compiled under — enough for a restoring service to re-plan
        without re-running the expensive rewrite/join-order phases, and
        enough to refuse the whole file when the world has moved.  The
        raw catalog version is also recorded, but only informationally:
        restore matches on the content fingerprint, because a rebuilt
        catalog's in-memory version counter restarts from zero and its
        landing on the same number was never guaranteed (the PR-7 known
        simplification, fixed in PR 9).  Best-effort: a failed write
        never breaks ``close()``.
        """
        from repro.adl.pretty import pretty

        entries = []
        for entry in self.cache.entries():
            if entry.catalog_version != self._catalog_version():
                continue  # stale on disk would be dropped anyway; skip now
            entries.append(
                {
                    "shape": entry.shape,
                    "adl": pretty(entry.expr),
                    "param_names": list(entry.param_names),
                    "option": entry.option,
                    "set_oriented": entry.set_oriented,
                }
            )
        payload = {
            "catalog_version": self._catalog_version(),
            "catalog_fingerprint": self._catalog_fingerprint(),
            "schema_fingerprint": schema_fingerprint(self.schema),
            "entries": entries,
        }
        try:
            tmp = f"{path}.tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=1)
            os.replace(tmp, path)
        except OSError:
            pass

    def _restore_plan_cache(self, path: str) -> None:
        """Warm-start the plan cache from a :meth:`_persist_plan_cache`
        file.  The file is ignored wholesale when missing, unreadable, or
        compiled under a different schema fingerprint or *catalog content
        fingerprint* (restored entries are rebased onto the current
        in-memory catalog version — matching on content rather than on
        the raw version counter, which restarts per process); individual
        entries that fail to re-plan are dropped and counted
        (``warm_dropped``) without poisoning the rest.  Files from
        before the content fingerprint existed are still honoured via
        the legacy exact-version comparison."""
        from repro.adl.parser import parse_adl
        from repro.shard.nodes import Exchange

        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        entries = payload.get("entries")
        if not isinstance(entries, list):
            return
        version = self._catalog_version()
        if payload.get("schema_fingerprint") != schema_fingerprint(self.schema):
            self.warm_dropped += len(entries)
            return
        stored_fp = payload.get("catalog_fingerprint")
        if stored_fp is not None:
            # content match: the rebuilt catalog holds the same statistics,
            # indexes and partitionings the entries were compiled under —
            # rebase them onto whatever version number it landed on
            if stored_fp != self._catalog_fingerprint():
                self.warm_dropped += len(entries)
                return
        elif payload.get("catalog_version") != version:
            # pre-fingerprint file: fall back to the exact-version check
            self.warm_dropped += len(entries)
            return
        for raw in entries:
            try:
                expr = parse_adl(raw["adl"])
                planner = Planner(
                    self.catalog,
                    reorder=self.reorder,
                    bushy=self.bushy,
                    parallel_workers=self.parallel_workers,
                )
                plan = planner.plan(expr)
                self.cache.put(
                    CachedPlan(
                        shape=raw["shape"],
                        catalog_version=version,
                        expr=expr,
                        plan=plan,
                        param_names=tuple(raw["param_names"]),
                        option=raw["option"],
                        explain=plan.explain(),
                        set_oriented=bool(raw["set_oriented"]),
                        parallel=any(
                            isinstance(op, Exchange) for op in plan.operators()
                        ),
                        epoch=getattr(self.db, "epoch", None),
                        est_rows=getattr(plan, "est_rows", None),
                    )
                )
                self.warm_restored += 1
            except Exception:
                self.warm_dropped += 1

    def close(self, wait: bool = True) -> None:
        self._closed = True
        self._pool.shutdown(wait=wait)
        if self.cache_persist_path:
            self._persist_plan_cache(self.cache_persist_path)
        with self._parallel_guard:
            if self._parallel is not None:
                self._parallel.close()
                self._parallel = None

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
