"""The query service layer (PR 4): sessions, prepared statements, and a
parameterized plan cache over the PR 1–3 optimize/execute pipeline."""

from repro.service.cache import CachedPlan, CacheStats, PlanCache
from repro.service.prepared import PreparedStatement, check_bindings, normalize_shape
from repro.service.service import QueryResult, QueryService, Session, SessionStats

__all__ = [
    "CachedPlan",
    "CacheStats",
    "PlanCache",
    "PreparedStatement",
    "QueryResult",
    "QueryService",
    "Session",
    "SessionStats",
    "check_bindings",
    "normalize_shape",
]
