"""Static type checker for OOSQL.

OOSQL is orthogonal "provided [expressions] are correctly typed" (Section 2)
— this checker enforces that proviso at the source level, before
translation, with schema-aware name resolution:

* an :class:`~repro.oosql.ast.Ident` resolves to an in-scope iteration
  variable first, then to a base table (class extension);
* path expressions dereference object references implicitly
  (``d.supplier.sname``), exactly like the ADL checker;
* ``=`` / ``!=`` work on any pair of unifiable types (scalar or set —
  the translator later picks the scalar or set-comparison form);
* quantifier and select-from-where blocks introduce scopes.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.datamodel.errors import TypeCheckError
from repro.datamodel.schema import Schema
from repro.datamodel.types import (
    ANY,
    BOOL,
    FLOAT,
    INT,
    STRING,
    AnyType,
    OidType,
    SetType,
    TupleType,
    Type,
    is_comparable,
    is_numeric,
    unify,
)
from repro.oosql import ast as Q


class OOSQLTypeChecker:
    def __init__(self, schema: Optional[Schema] = None) -> None:
        self.schema = schema

    def check(self, node: Q.Node, env: Optional[Mapping[str, Type]] = None) -> Type:
        return self._check(node, dict(env or {}))

    # -- helpers ---------------------------------------------------------------
    def _set_elem(self, node: Q.Node, env: Dict[str, Type], what: str) -> Type:
        t = self._check(node, env)
        if isinstance(t, AnyType):
            return ANY
        if not isinstance(t, SetType):
            raise TypeCheckError(f"{what} must be a set, got {t!r} in {node}")
        return t.element

    def _bool(self, node: Q.Node, env: Dict[str, Type], what: str) -> None:
        t = self._check(node, env)
        if not BOOL.is_assignable_from(t):
            raise TypeCheckError(f"{what} must be boolean, got {t!r} in {node}")

    # -- the checker ---------------------------------------------------------------
    def _check(self, node: Q.Node, env: Dict[str, Type]) -> Type:
        if isinstance(node, Q.Literal):
            if node.value is None:
                return ANY
            if isinstance(node.value, bool):
                return BOOL
            if isinstance(node.value, int):
                return INT
            if isinstance(node.value, float):
                return FLOAT
            if isinstance(node.value, str):
                return STRING
            raise TypeCheckError(f"unsupported literal {node.value!r}")

        if isinstance(node, Q.Ident):
            if node.name in env:
                return env[node.name]
            if self.schema is not None and self.schema.has_extent(node.name):
                return self.schema.extent_type(node.name)
            raise TypeCheckError(f"unknown name {node.name!r} (not a variable or base table)")

        if isinstance(node, Q.Param):
            # a parameter's value (hence type) is only known at execution
            # time; ANY unifies with everything, so surrounding operators
            # still check their other operands
            return ANY

        if isinstance(node, Q.Path):
            base = self._check(node.base, env)
            if isinstance(base, AnyType):
                return ANY
            if isinstance(base, OidType):
                if self.schema is None or base.class_name is None:
                    raise TypeCheckError(f"cannot dereference untyped oid in {node}")
                base = self.schema.object_type(base.class_name)
            if not isinstance(base, TupleType):
                raise TypeCheckError(f"attribute {node.attr!r} on non-object type {base!r}")
            return base.field(node.attr)

        if isinstance(node, Q.TupleCons):
            return TupleType({n: self._check(e, env) for n, e in node.fields})

        if isinstance(node, Q.SetCons):
            element: Type = ANY
            for item in node.elements:
                element = unify(element, self._check(item, env), "set constructor")
            return SetType(element)

        if isinstance(node, Q.BinOp):
            return self._check_binop(node, env)

        if isinstance(node, Q.Not):
            self._bool(node.operand, env, "'not' operand")
            return BOOL

        if isinstance(node, Q.Neg):
            t = self._check(node.operand, env)
            if not (isinstance(t, AnyType) or is_numeric(t)):
                raise TypeCheckError(f"unary minus on non-numeric {t!r}")
            return t

        if isinstance(node, Q.Quantifier):
            element = self._set_elem(node.source, env, f"{node.kind} range")
            if node.pred is not None:
                inner = dict(env)
                inner[node.var] = element
                self._bool(node.pred, inner, f"{node.kind} body")
            return BOOL

        if isinstance(node, Q.Aggregate):
            element = self._set_elem(node.source, env, "aggregate operand")
            if node.func == "count":
                return INT
            if isinstance(element, AnyType):
                return FLOAT if node.func == "avg" else ANY
            if node.func in ("sum", "avg") and not is_numeric(element):
                raise TypeCheckError(f"{node.func} over non-numeric {element!r}")
            if node.func in ("min", "max") and not is_comparable(element):
                raise TypeCheckError(f"{node.func} over non-comparable {element!r}")
            return FLOAT if node.func == "avg" else element

        if isinstance(node, Q.Flatten):
            element = self._set_elem(node.source, env, "flatten operand")
            if isinstance(element, AnyType):
                return SetType(ANY)
            if not isinstance(element, SetType):
                raise TypeCheckError(f"flatten needs a set of sets, got element {element!r}")
            return element

        if isinstance(node, Q.SFW):
            inner = dict(env)
            for var, source in node.bindings:
                element = self._set_elem(source, inner, f"from-clause of {var!r}")
                inner[var] = element
            if node.where is not None:
                self._bool(node.where, inner, "where-clause")
            return SetType(self._check(node.select, inner))

        raise TypeCheckError(f"no typing rule for {type(node).__name__}")

    def _check_binop(self, node: Q.BinOp, env: Dict[str, Type]) -> Type:
        op = node.op
        left = self._check(node.left, env)
        right = self._check(node.right, env)

        if op in ("and", "or"):
            for t, side in ((left, node.left), (right, node.right)):
                if not BOOL.is_assignable_from(t):
                    raise TypeCheckError(f"'{op}' operand must be boolean, got {t!r} in {side}")
            return BOOL

        if op in ("+", "-", "*", "/", "mod"):
            for t in (left, right):
                if not (isinstance(t, AnyType) or is_numeric(t)):
                    raise TypeCheckError(f"arithmetic {op!r} on non-numeric {t!r}")
            if op == "/":
                return FLOAT
            out = unify(left, right, f"arithmetic {op}")
            return out if not isinstance(out, AnyType) else INT

        if op in ("=", "!="):
            unify(left, right, f"comparison {op}")
            return BOOL

        if op in ("<", "<=", ">", ">="):
            unify(left, right, f"comparison {op}")
            for t in (left, right):
                if not (isinstance(t, AnyType) or is_comparable(t)):
                    raise TypeCheckError(f"ordering {op} on non-comparable {t!r}")
            return BOOL

        if op in ("in", "not in"):
            if isinstance(right, AnyType):
                return BOOL
            if not isinstance(right, SetType):
                raise TypeCheckError(f"right operand of 'in' must be a set, got {right!r}")
            unify(left, right.element, "membership")
            return BOOL

        if op == "contains":
            if isinstance(left, AnyType):
                return BOOL
            if not isinstance(left, SetType):
                raise TypeCheckError(f"left operand of 'contains' must be a set, got {left!r}")
            unify(right, left.element, "containment")
            return BOOL

        if op in ("subset", "subseteq", "superset", "superseteq", "disjoint"):
            for t in (left, right):
                if not isinstance(t, (SetType, AnyType)):
                    raise TypeCheckError(f"set comparison {op} on non-set {t!r}")
            unify(left, right, f"set comparison {op}")
            return BOOL

        if op in ("union", "intersect", "minus"):
            out = unify(left, right, f"set operation {op}")
            if isinstance(out, AnyType):
                return SetType(ANY)
            if not isinstance(out, SetType):
                raise TypeCheckError(f"set operation {op} on non-sets: {left!r}, {right!r}")
            return out

        raise TypeCheckError(f"no typing rule for operator {op!r}")
