"""OOSQL: the paper's declarative, orthogonal SQL-like source language."""

from repro.oosql import ast
from repro.oosql.lexer import tokenize
from repro.oosql.parser import Parser, parse
from repro.oosql.pretty import pretty
from repro.oosql.typecheck import OOSQLTypeChecker

__all__ = ["OOSQLTypeChecker", "Parser", "ast", "parse", "pretty", "tokenize"]
