"""Token definitions for the OOSQL lexer."""

from __future__ import annotations

from dataclasses import dataclass

#: Reserved words, lowercase.  OOSQL keywords are case-insensitive.
KEYWORDS = frozenset(
    {
        "select",
        "from",
        "where",
        "in",
        "exists",
        "forall",
        "and",
        "or",
        "not",
        "union",
        "intersect",
        "minus",
        "subset",
        "subseteq",
        "superset",
        "superseteq",
        "contains",
        "disjoint",
        "mod",
        "true",
        "false",
        "null",
        "count",
        "sum",
        "min",
        "max",
        "avg",
        "flatten",
        "except",
    }
)

#: Multi-character punctuation, longest first so the lexer can scan greedily.
PUNCTUATION = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", "{", "}", "[", "]", ",", ".", ":", "+", "-", "*", "/")


@dataclass(frozen=True)
class Token:
    """One lexical token with its 1-based source position."""

    kind: str  # "keyword" | "ident" | "param" | "int" | "float" | "string" | "punct" | "eof"
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word

    def is_punct(self, text: str) -> bool:
        return self.kind == "punct" and self.text == text

    def describe(self) -> str:
        if self.kind == "eof":
            return "end of input"
        return f"{self.kind} {self.text!r}"
