"""Pretty printer for OOSQL ASTs — emits re-parseable query text."""

from __future__ import annotations

from repro.oosql import ast as Q

_KEYWORD_OPS = frozenset(
    {"and", "or", "in", "not in", "subset", "subseteq", "superset",
     "superseteq", "contains", "disjoint", "union", "intersect", "minus", "mod"}
)


def pretty(node: Q.Node) -> str:
    return _p(node)


def _p(node: Q.Node) -> str:
    if isinstance(node, Q.Literal):
        if node.value is None:
            return "null"
        if isinstance(node.value, bool):
            return "true" if node.value else "false"
        if isinstance(node.value, str):
            return f'"{node.value}"'
        return repr(node.value)
    if isinstance(node, Q.Ident):
        return node.name
    if isinstance(node, Q.Param):
        return f"${node.name}"
    if isinstance(node, Q.Path):
        return f"{_p_atomic(node.base)}.{node.attr}"
    if isinstance(node, Q.TupleCons):
        inner = ", ".join(f"{n} = {_p(e)}" for n, e in node.fields)
        return f"({inner})"
    if isinstance(node, Q.SetCons):
        return "{" + ", ".join(_p(e) for e in node.elements) + "}"
    if isinstance(node, Q.BinOp):
        op = node.op if node.op in _KEYWORD_OPS or node.op in ("=", "!=", "<", "<=", ">", ">=") else node.op
        return f"({_p(node.left)} {op} {_p(node.right)})"
    if isinstance(node, Q.Not):
        return f"not ({_p(node.operand)})"
    if isinstance(node, Q.Neg):
        return f"-({_p(node.operand)})"
    if isinstance(node, Q.Quantifier):
        body = f" : {_p(node.pred)}" if node.pred is not None else ""
        return f"{node.kind} {node.var} in ({_p(node.source)}){body}"
    if isinstance(node, Q.Aggregate):
        return f"{node.func}({_p(node.source)})"
    if isinstance(node, Q.Flatten):
        return f"flatten({_p(node.source)})"
    if isinstance(node, Q.SFW):
        bindings = ", ".join(f"{v} in {_p_atomic(e)}" for v, e in node.bindings)
        where = f" where {_p(node.where)}" if node.where is not None else ""
        return f"select {_p(node.select)} from {bindings}{where}"
    raise TypeError(f"no pretty form for {type(node).__name__}")


def _p_atomic(node: Q.Node) -> str:
    text = _p(node)
    if isinstance(node, (Q.SFW, Q.Quantifier)):
        return f"({text})"
    return text
