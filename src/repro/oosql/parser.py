"""Recursive-descent parser for OOSQL.

Grammar (precedence from loosest to tightest)::

    expr        := or_expr
    or_expr     := and_expr ('or' and_expr)*
    and_expr    := not_expr ('and' not_expr)*
    not_expr    := 'not' not_expr | comparison
    comparison  := set_expr (comp_op set_expr)?
    comp_op     := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
                 | 'in' | 'not' 'in' | 'subset' | 'subseteq'
                 | 'superset' | 'superseteq' | 'contains' | 'disjoint'
    set_expr    := additive (('union'|'intersect'|'minus') additive)*
    additive    := multiplic (('+'|'-') multiplic)*
    multiplic   := unary (('*'|'/'|'mod') unary)*
    unary       := '-' unary | postfix
    postfix     := primary ('.' IDENT)*
    primary     := literal | IDENT | '$' IDENT | aggregate | quantifier | sfw
                 | '(' IDENT '=' ... ')'          -- tuple constructor
                 | '(' expr ')' | '{' exprs? '}'
    sfw         := 'select' expr 'from' binding (',' binding)*
                   ('where' expr)?
    binding     := IDENT 'in' set_expr
    quantifier  := ('exists'|'forall') IDENT 'in' set_expr (':' expr)?

Notes mirroring the paper's usage:

* ``(a = e, ...)`` is always a *tuple constructor* (Example Query 1); a
  parenthesized equality must drop the parentheses or flip its operands;
* ``exists x in e`` without a body is the non-emptiness test of Example
  Query 3.2;
* a quantifier body extends as far right as possible — parenthesize to
  limit it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.datamodel.errors import OOSQLSyntaxError
from repro.oosql import ast as Q
from repro.oosql.lexer import tokenize
from repro.oosql.tokens import Token

_COMPARE_PUNCT = ("=", "!=", "<>", "<=", ">=", "<", ">")
_SETCMP_KEYWORDS = ("subset", "subseteq", "superset", "superseteq", "contains", "disjoint")


class Parser:
    def __init__(self, text: str) -> None:
        self.tokens: List[Token] = tokenize(text)
        self.pos = 0

    # -- token plumbing -------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> OOSQLSyntaxError:
        token = token or self.peek()
        return OOSQLSyntaxError(f"{message}, found {token.describe()}", token.line, token.column)

    def expect_punct(self, text: str) -> Token:
        token = self.peek()
        if not token.is_punct(text):
            raise self.error(f"expected {text!r}")
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if not token.is_keyword(word):
            raise self.error(f"expected keyword {word!r}")
        return self.advance()

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "ident":
            raise self.error("expected identifier")
        return self.advance().text

    # -- entry point --------------------------------------------------------------
    def parse(self) -> Q.Node:
        expr = self.parse_expr()
        token = self.peek()
        if token.kind != "eof":
            raise self.error("unexpected trailing input")
        return expr

    # -- precedence levels -----------------------------------------------------------
    def parse_expr(self) -> Q.Node:
        return self.parse_or()

    def parse_or(self) -> Q.Node:
        left = self.parse_and()
        while self.peek().is_keyword("or"):
            self.advance()
            left = Q.BinOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> Q.Node:
        left = self.parse_not()
        while self.peek().is_keyword("and"):
            self.advance()
            left = Q.BinOp("and", left, self.parse_not())
        return left

    def parse_not(self) -> Q.Node:
        if self.peek().is_keyword("not") and not self.peek(1).is_keyword("in"):
            self.advance()
            return Q.Not(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Q.Node:
        left = self.parse_set_expr()
        token = self.peek()
        if token.kind == "punct" and token.text in _COMPARE_PUNCT:
            self.advance()
            op = "!=" if token.text in ("!=", "<>") else token.text
            return Q.BinOp(op, left, self.parse_set_expr())
        if token.is_keyword("in"):
            self.advance()
            return Q.BinOp("in", left, self.parse_set_expr())
        if token.is_keyword("not") and self.peek(1).is_keyword("in"):
            self.advance()
            self.advance()
            return Q.BinOp("not in", left, self.parse_set_expr())
        if token.kind == "keyword" and token.text in _SETCMP_KEYWORDS:
            self.advance()
            return Q.BinOp(token.text, left, self.parse_set_expr())
        return left

    def parse_set_expr(self) -> Q.Node:
        left = self.parse_additive()
        while True:
            token = self.peek()
            if token.kind == "keyword" and token.text in ("union", "intersect", "minus"):
                self.advance()
                left = Q.BinOp(token.text, left, self.parse_additive())
            else:
                return left

    def parse_additive(self) -> Q.Node:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == "punct" and token.text in ("+", "-"):
                self.advance()
                left = Q.BinOp(token.text, left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Q.Node:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if (token.kind == "punct" and token.text in ("*", "/")) or token.is_keyword("mod"):
                self.advance()
                left = Q.BinOp(token.text, left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Q.Node:
        if self.peek().is_punct("-"):
            self.advance()
            return Q.Neg(self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> Q.Node:
        expr = self.parse_primary()
        while self.peek().is_punct("."):
            self.advance()
            token = self.peek()
            if token.kind not in ("ident", "keyword"):
                raise self.error("expected attribute name after '.'")
            expr = Q.Path(expr, self.advance().text)
        return expr

    # -- primaries --------------------------------------------------------------------
    def parse_primary(self) -> Q.Node:
        token = self.peek()

        if token.kind == "string":
            self.advance()
            return Q.Literal(token.text)
        if token.kind == "int":
            self.advance()
            return Q.Literal(int(token.text))
        if token.kind == "float":
            self.advance()
            return Q.Literal(float(token.text))
        if token.is_keyword("true"):
            self.advance()
            return Q.Literal(True)
        if token.is_keyword("false"):
            self.advance()
            return Q.Literal(False)
        if token.is_keyword("null"):
            self.advance()
            return Q.Literal(None)

        if token.kind == "keyword" and token.text in Q.AGGREGATES:
            self.advance()
            self.expect_punct("(")
            source = self.parse_expr()
            self.expect_punct(")")
            return Q.Aggregate(token.text, source)

        if token.is_keyword("flatten"):
            self.advance()
            self.expect_punct("(")
            source = self.parse_expr()
            self.expect_punct(")")
            return Q.Flatten(source)

        if token.is_keyword("exists") or token.is_keyword("forall"):
            return self.parse_quantifier()

        if token.is_keyword("select"):
            return self.parse_sfw()

        if token.kind == "ident":
            self.advance()
            return Q.Ident(token.text)

        if token.kind == "param":
            self.advance()
            return Q.Param(token.text)

        if token.is_punct("("):
            # tuple constructor iff it starts "( ident = " — Example Query 1 style
            if self.peek(1).kind == "ident" and self.peek(2).is_punct("="):
                return self.parse_tuple()
            self.advance()
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr

        if token.is_punct("{"):
            return self.parse_set()

        raise self.error("expected an expression")

    def parse_tuple(self) -> Q.Node:
        self.expect_punct("(")
        fields: List[Tuple[str, Q.Node]] = []
        while True:
            name = self.expect_ident()
            self.expect_punct("=")
            fields.append((name, self.parse_expr()))
            if self.peek().is_punct(","):
                self.advance()
                continue
            break
        self.expect_punct(")")
        return Q.TupleCons(tuple(fields))

    def parse_set(self) -> Q.Node:
        self.expect_punct("{")
        elements: List[Q.Node] = []
        if not self.peek().is_punct("}"):
            while True:
                elements.append(self.parse_expr())
                if self.peek().is_punct(","):
                    self.advance()
                    continue
                break
        self.expect_punct("}")
        return Q.SetCons(tuple(elements))

    def parse_quantifier(self) -> Q.Node:
        token = self.advance()  # exists | forall
        var = self.expect_ident()
        self.expect_keyword("in")
        source = self.parse_set_expr()
        pred: Optional[Q.Node] = None
        if self.peek().is_punct(":"):
            self.advance()
            pred = self.parse_expr()
        elif token.text == "forall":
            raise self.error("forall requires a ': predicate' body")
        return Q.Quantifier(token.text, var, source, pred)

    def parse_sfw(self) -> Q.Node:
        self.expect_keyword("select")
        select = self.parse_expr()
        self.expect_keyword("from")
        bindings: List[Tuple[str, Q.Node]] = []
        while True:
            var = self.expect_ident()
            self.expect_keyword("in")
            bindings.append((var, self.parse_set_expr()))
            if self.peek().is_punct(","):
                self.advance()
                continue
            break
        where: Optional[Q.Node] = None
        if self.peek().is_keyword("where"):
            self.advance()
            where = self.parse_expr()
        return Q.SFW(select, tuple(bindings), where)


def parse(text: str) -> Q.Node:
    """Parse one OOSQL expression (usually a select block)."""
    return Parser(text).parse()
