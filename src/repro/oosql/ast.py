"""AST for OOSQL — the paper's declarative source language (Section 2).

OOSQL is *orthogonal*: select-from-where blocks, quantifiers, set
comparisons, path expressions, tuple and set constructors may appear in any
clause, provided they are correctly typed.  Names (:class:`Ident`) stay
unresolved here — whether an identifier is an iteration variable or a base
table is decided by the translator against the scope and schema, mirroring
how the paper treats ``SUPPLIER`` and ``s`` uniformly in the text.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple, Union

from repro.datamodel.errors import DataModelError

#: Binary operator vocabulary (surface names, before translation):
#: arithmetic, scalar comparison, set comparison, boolean, set algebra.
BINARY_OPS = frozenset(
    {
        "+", "-", "*", "/", "mod",
        "=", "!=", "<", "<=", ">", ">=",
        "in", "not in", "subset", "subseteq", "superset", "superseteq",
        "contains", "disjoint",
        "and", "or",
        "union", "intersect", "minus",
    }
)

AGGREGATES = ("count", "sum", "min", "max", "avg")


class Node:
    """Base class for OOSQL AST nodes (frozen dataclasses)."""

    __slots__ = ()

    def children(self) -> Iterator["Node"]:
        for field in dataclasses.fields(self):  # type: ignore[arg-type]
            value = getattr(self, field.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, tuple):
                for item in value:
                    if isinstance(item, Node):
                        yield item
                    elif isinstance(item, tuple) and len(item) == 2 and isinstance(item[1], Node):
                        yield item[1]

    def walk(self) -> Iterator["Node"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def __str__(self) -> str:
        from repro.oosql.pretty import pretty

        return pretty(self)


@dataclass(frozen=True)
class Literal(Node):
    """String, int, float, bool, or null constant."""

    value: Union[None, bool, int, float, str]


@dataclass(frozen=True)
class Ident(Node):
    """An unresolved name: iteration variable or base-table reference."""

    name: str


@dataclass(frozen=True)
class Param(Node):
    """A prepared-statement parameter placeholder ``$name``.

    Parameters are bound at *execution* time (per call), never at
    compile/optimize time — queries differing only in parameter values
    share one plan, which is what makes a parameterized plan cache work.
    """

    name: str


@dataclass(frozen=True)
class Path(Node):
    """Attribute access ``e.a`` (chains form path expressions)."""

    base: Node
    attr: str


@dataclass(frozen=True)
class TupleCons(Node):
    """Tuple construction ``(a = e1, b = e2)`` as in Example Query 1."""

    fields: Tuple[Tuple[str, Node], ...]

    def __post_init__(self) -> None:
        names = [n for n, _ in self.fields]
        if len(names) != len(set(names)):
            raise DataModelError(f"duplicate attribute in tuple constructor: {names}")


@dataclass(frozen=True)
class SetCons(Node):
    """Set construction ``{e1, ..., en}``."""

    elements: Tuple[Node, ...]


@dataclass(frozen=True)
class BinOp(Node):
    """Any binary operator (see :data:`BINARY_OPS`)."""

    op: str
    left: Node
    right: Node

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise DataModelError(f"unknown OOSQL binary operator {self.op!r}")


@dataclass(frozen=True)
class Not(Node):
    operand: Node


@dataclass(frozen=True)
class Neg(Node):
    """Unary arithmetic minus."""

    operand: Node


@dataclass(frozen=True)
class Quantifier(Node):
    """``exists x in e : p`` / ``forall x in e : p``.

    The predicate is optional for ``exists`` (the paper's Example Query 3.2
    writes ``exists x in (select ...)`` for a non-emptiness test); a missing
    predicate means ``true``.
    """

    kind: str  # "exists" | "forall"
    var: str
    source: Node
    pred: Optional[Node]

    def __post_init__(self) -> None:
        if self.kind not in ("exists", "forall"):
            raise DataModelError(f"unknown quantifier {self.kind!r}")


@dataclass(frozen=True)
class Aggregate(Node):
    """``count(e)``, ``sum(e)``, ``min/max/avg(e)``."""

    func: str
    source: Node

    def __post_init__(self) -> None:
        if self.func not in AGGREGATES:
            raise DataModelError(f"unknown aggregate {self.func!r}")


@dataclass(frozen=True)
class Flatten(Node):
    """``flatten(e)`` — multiple union of a set of sets.

    Needed to type queries like the paper's Example Query 3.1, whose inner
    block produces a *set of sets* of parts that is compared against a flat
    set of parts (the paper leaves the coercion implicit; OOSQL here makes
    it explicit and type-safe).
    """

    source: Node


@dataclass(frozen=True)
class SFW(Node):
    """A select-from-where block.

    ``bindings`` is the from-clause: one or more ``var in expr`` entries
    (multiple entries denote nested iteration, leftmost outermost).
    ``where`` is optional; a missing where-clause means ``true``.
    """

    select: Node
    bindings: Tuple[Tuple[str, Node], ...]
    where: Optional[Node]

    def __post_init__(self) -> None:
        if not self.bindings:
            raise DataModelError("select block needs at least one from-binding")
        names = [n for n, _ in self.bindings]
        if len(names) != len(set(names)):
            raise DataModelError(f"duplicate from-clause variable: {names}")
