"""Hand-rolled lexer for OOSQL.

Produces a flat list of :class:`~repro.oosql.tokens.Token`, terminated by an
``eof`` token.  Comments run from ``--`` to end of line, SQL style.
"""

from __future__ import annotations

from typing import List

from repro.datamodel.errors import OOSQLSyntaxError
from repro.oosql.tokens import KEYWORDS, PUNCTUATION, Token


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)

    def column() -> int:
        return i - line_start + 1

    while i < n:
        ch = text[i]

        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            while i < n and text[i] != "\n":
                i += 1
            continue

        start_col = column()

        # string literal
        if ch == '"':
            j = i + 1
            chars: List[str] = []
            while j < n and text[j] != '"':
                if text[j] == "\n":
                    raise OOSQLSyntaxError("unterminated string literal", line, start_col)
                chars.append(text[j])
                j += 1
            if j >= n:
                raise OOSQLSyntaxError("unterminated string literal", line, start_col)
            tokens.append(Token("string", "".join(chars), line, start_col))
            i = j + 1
            continue

        # number
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            if j < n and text[j] == "." and j + 1 < n and text[j + 1].isdigit():
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
                tokens.append(Token("float", text[i:j], line, start_col))
            else:
                tokens.append(Token("int", text[i:j], line, start_col))
            i = j
            continue

        # parameter placeholder: $name (prepared statements)
        if ch == "$":
            j = i + 1
            if j >= n or not (text[j].isalpha() or text[j] == "_"):
                raise OOSQLSyntaxError("expected parameter name after '$'", line, start_col)
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token("param", text[i + 1 : j], line, start_col))
            i = j
            continue

        # identifier / keyword
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, line, start_col))
            else:
                tokens.append(Token("ident", word, line, start_col))
            i = j
            continue

        # punctuation (longest match first)
        for punct in PUNCTUATION:
            if text.startswith(punct, i):
                tokens.append(Token("punct", punct, line, start_col))
                i += len(punct)
                break
        else:
            raise OOSQLSyntaxError(f"unexpected character {ch!r}", line, start_col)

    tokens.append(Token("eof", "", line, column()))
    return tokens
